"""Deterministic profiling of the two serving hot loops (PR 9).

The ROADMAP's "native-speed hot path" work needs a repeatable answer
to *where the time goes*:

* the **codec + pipeline** loop — ``encode_packet`` / header decode /
  ``offer_batch`` over a seeded packet stream (the per-arrival work of
  ``switch/pipeline.py`` + ``net/wire.py``), per-packet tier vs the
  bulk ``np.frombuffer`` tier;
* the **scheduler tick** loop — ``ServingLoop.run_tick`` driving a
  seeded multi-tenant serve (admission, DRR service, transfer steps).

``run_hotpath_profile`` drives both under ``cProfile`` with fixed
seeds and emits the payload for ``results/PROFILE_hotpath.json``: the
*workload counters* (packets, ticks, entries, per-function call
counts) are deterministic run-to-run; the wall-clock columns beside
them are measurements.  ``repro profile`` and
``scripts/profile_hotpath.py`` are the entry points; the workflow is
documented in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from typing import Dict, List, Optional

from repro.obs import names

#: Top-N in-repo functions recorded per profiled loop.
_HOTSPOT_LIMIT = 12


def _hotspots(profile: cProfile.Profile,
              limit: int = _HOTSPOT_LIMIT) -> List[Dict]:
    """The repo's own functions, by cumulative time.

    Call counts are deterministic for a seeded workload; the time
    columns are wall measurements.  Frames outside ``repro`` (stdlib,
    numpy internals) are folded away — the point is to rank *our* hot
    loops, not to audit the interpreter.
    """
    stats = pstats.Stats(profile)
    rows = []
    for (filename, line, name), (cc, ncalls, tottime, cumtime,
                                 _callers) in stats.stats.items():
        marker = "/repro/"
        index = filename.rfind(marker)
        if index < 0:
            continue
        rows.append({
            "function": f"{filename[index + len(marker):]}:{line}:{name}",
            "calls": ncalls,
            "primitive_calls": cc,
            "tottime_seconds": tottime,
            "cumtime_seconds": cumtime,
        })
    rows.sort(key=lambda row: (-row["cumtime_seconds"], row["function"]))
    return rows[:limit]


def _profile_codec_pipeline(rows: int, shards: int, batch_size: int,
                            seed: int) -> Dict:
    """Profile pack/unpack + ``offer_batch``: per-packet vs bulk tier.

    The workload is the fig11 DISTINCT stream encoded onto the wire:
    every timing below covers the identical seeded packet vector, so
    the per-packet/bulk ratios are apples-to-apples.
    """
    from repro.cluster.runtime import make_sharded
    from repro.core.distinct import DistinctPruner
    from repro.net.packet import CheetahPacket
    from repro.net import wire
    from repro.workloads.streams import random_order_stream

    stream = random_order_stream(rows, max(1, rows // 10), seed)
    packets = [CheetahPacket(fid=1, seq=index, values=(value,))
               for index, value in enumerate(stream)]

    start = time.perf_counter()
    frames_scalar = [wire.encode_packet(packet) for packet in packets]
    encode_packet_seconds = time.perf_counter() - start
    start = time.perf_counter()
    frames = wire.encode_packet_batch(packets)
    encode_bulk_seconds = time.perf_counter() - start
    assert frames == frames_scalar

    start = time.perf_counter()
    headers_scalar = [wire.decode_header(frame) for frame in frames]
    header_packet_seconds = time.perf_counter() - start
    start = time.perf_counter()
    headers = wire.decode_header_batch(frames)
    header_bulk_seconds = time.perf_counter() - start
    assert headers == headers_scalar

    start = time.perf_counter()
    columns = wire.decode_header_fields(frames)
    header_fields_seconds = time.perf_counter() - start
    assert list(zip(*columns)) == headers_scalar

    start = time.perf_counter()
    values_scalar = [wire.decode_values(frame, header[2])
                     for frame, header in zip(frames, headers)]
    values_packet_seconds = time.perf_counter() - start
    start = time.perf_counter()
    values = wire.decode_values_batch(frames,
                                      [header[2] for header in headers])
    values_bulk_seconds = time.perf_counter() - start
    assert values == values_scalar

    entries = [value[0] for value in values]

    def offer_batched() -> List[bool]:
        pruner = make_sharded(
            lambda: DistinctPruner(rows=4096, width=2, seed=seed),
            shards, None, seed=seed)
        decisions: List[bool] = []
        for index in range(0, len(entries), batch_size):
            decisions += pruner.offer_batch(entries[index:index
                                                    + batch_size])
        return decisions

    pruner = make_sharded(
        lambda: DistinctPruner(rows=4096, width=2, seed=seed),
        shards, None, seed=seed)
    start = time.perf_counter()
    packet_decisions = [pruner.offer(entry) for entry in entries]
    offer_packet_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch_decisions = offer_batched()
    offer_batch_seconds = time.perf_counter() - start
    assert batch_decisions == packet_decisions

    # Second, profiled pass (same seeds, fresh pruner: identical work).
    profile = cProfile.Profile()
    profile.enable()
    profiled_decisions = offer_batched()
    profile.disable()
    assert profiled_decisions == batch_decisions

    def ratio(slow: float, fast: float) -> Optional[float]:
        return slow / fast if fast > 0 else None

    # Kernel entries are keyed by the profiled function's real name
    # (repro.obs.names.PROFILE_KERNEL_KEYS); pre-PR-10 payloads used
    # abbreviations — renderers map those via LEGACY_KERNEL_KEYS.
    return {
        "packets": len(packets),
        "bytes_on_wire": sum(len(frame) for frame in frames),
        names.KERNEL_ENCODE: {
            "per_packet_seconds": encode_packet_seconds,
            "bulk_seconds": encode_bulk_seconds,
            "bulk_speedup": ratio(encode_packet_seconds,
                                  encode_bulk_seconds),
        },
        names.KERNEL_DECODE_HEADER: {
            "per_packet_seconds": header_packet_seconds,
            "bulk_seconds": header_bulk_seconds,
            "bulk_speedup": ratio(header_packet_seconds,
                                  header_bulk_seconds),
            "fields_seconds": header_fields_seconds,
            "fields_speedup": ratio(header_packet_seconds,
                                    header_fields_seconds),
        },
        names.KERNEL_DECODE_VALUES: {
            "per_packet_seconds": values_packet_seconds,
            "bulk_seconds": values_bulk_seconds,
            "bulk_speedup": ratio(values_packet_seconds,
                                  values_bulk_seconds),
        },
        names.KERNEL_OFFER: {
            "per_packet_seconds": offer_packet_seconds,
            "batched_seconds": offer_batch_seconds,
            "batched_speedup": ratio(offer_packet_seconds,
                                     offer_batch_seconds),
        },
        "hotspots": _hotspots(profile),
    }


def _profile_scheduler_loop(tenants: int, rows: int, shards: int,
                            seed: int) -> Dict:
    """Profile the per-tick scheduler service loop under a seeded
    multi-tenant serve (the ``ServingLoop.run_tick`` hot loop)."""
    from repro.cluster.scheduler import (
        QueryScheduler,
        SchedulerConfig,
        tenant_specs,
    )

    config = SchedulerConfig(slots=tenants, loss_rate=0.05,
                             reorder_window=2, shards=shards, seed=seed)
    scheduler = QueryScheduler(config)
    specs = tenant_specs(tenants, rows=rows, seed=seed)
    profile = cProfile.Profile()
    profile.enable()
    report = scheduler.serve(specs)
    profile.disable()
    return {
        "tenants": tenants,
        "rows_per_tenant": rows,
        "ticks": report.ticks,
        "entries": report.entries,
        "served": len(report.served),
        "all_equivalent": report.all_equivalent,
        "wall_seconds": report.wall_seconds,
        "entries_per_second": (report.entries / report.wall_seconds
                               if report.wall_seconds else None),
        "hotspots": _hotspots(profile),
    }


def run_hotpath_profile(rows: int = 200_000, shards: int = 4,
                        batch_size: int = 8192, seed: int = 0,
                        tenants: int = 4,
                        serve_rows: int = 240) -> Dict:
    """Profile both hot loops; returns the ``PROFILE_hotpath.json``
    payload.

    Deterministic given its arguments: the packet stream, tenant mix,
    channel faults, and therefore every *count* in the payload are
    seed-fixed; only the ``*_seconds`` fields vary with the host.
    """
    if rows < 40:
        raise ValueError(f"rows must be >= 40, got {rows}")
    if tenants < 1:
        raise ValueError(f"tenants must be >= 1, got {tenants}")
    return {
        "benchmark": "hotpath_profile",
        "rows": rows,
        "shards": shards,
        "batch_size": batch_size,
        "seed": seed,
        "codec_pipeline": _profile_codec_pipeline(rows, shards,
                                                  batch_size, seed),
        "scheduler_loop": _profile_scheduler_loop(tenants, serve_rows,
                                                  shards, seed),
    }
