"""Experiment result container and text-table rendering."""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence


@dataclasses.dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure."""

    experiment_id: str
    title: str
    rows: List[Dict]
    notes: str = ""

    def render(self) -> str:
        """The experiment as an aligned text table."""
        header = f"== {self.experiment_id}: {self.title} =="
        body = format_table(self.rows)
        parts = [header, body]
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)


def format_table(rows: Sequence[Dict], float_digits: int = 4) -> str:
    """Align a list of dicts as a text table (column order = first row)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            if value != 0 and abs(value) < 10 ** -float_digits:
                return f"{value:.2e}"
            return f"{value:.{float_digits}f}"
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = [
        "  ".join(col.ljust(w) for col, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


@dataclasses.dataclass
class ConfidenceInterval:
    """Mean with a two-tailed Student-t 95% interval (the paper's §8.3
    methodology: five runs of each randomized algorithm)."""

    mean: float
    half_width: float
    runs: int

    @property
    def low(self) -> float:
        """Lower interval bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper interval bound."""
        return self.mean + self.half_width

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def repeat_with_ci(metric_fn, seeds: Sequence[int] = (0, 1, 2, 3, 4),
                   confidence: float = 0.95) -> ConfidenceInterval:
    """Run ``metric_fn(seed)`` per seed; return mean ± t-interval.

    Matches §8.3: "We ran each randomized algorithm five times and used
    two-tailed Student t-test to determine the 95% confidence intervals."
    """
    from scipy import stats

    values = [float(metric_fn(seed)) for seed in seeds]
    n = len(values)
    if n < 2:
        raise ValueError("need at least two runs for an interval")
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    t_crit = float(stats.t.ppf((1 + confidence) / 2, df=n - 1))
    half_width = t_crit * (variance / n) ** 0.5
    return ConfidenceInterval(mean=mean, half_width=half_width, runs=n)


def save_result(result: ExperimentResult,
                directory: Optional[str] = None) -> str:
    """Write the rendered experiment under ``results/`` and return the path."""
    directory = directory or os.environ.get("REPRO_RESULTS_DIR", "results")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{result.experiment_id}.txt")
    with open(path, "w") as f:
        f.write(result.render() + "\n")
    return path
