"""Experiment result container, text-table rendering, and perf benches.

Besides the rendered text tables, this module emits machine-readable
``BENCH_<name>.json`` files (timings + pruning fractions) so the perf
trajectory can be tracked across PRs and asserted in CI:

* :func:`run_fig11_scale_bench` — the Figure 11 scale benchmark: every
  fig11 pruner over growing stream prefixes, timed per-packet vs
  batched, optionally sharded across K simulated switch pipelines
  (``--shards`` on the CLI), with decision-equivalence verified.
* :func:`run_fig5_bench` — one timed fig5 completion-time regeneration.
* :func:`run_e2e_bench` — the end-to-end scenario suite through the
  full ``ClusterSimulation`` stack (lossy channels + §7.2 protocol +
  sharded switch), pipelined vs. sequential switch dispatch, plus a
  loss-rate sweep; every run's result is checked against
  ``QueryPlan.run``.
* :func:`run_concurrency_bench` — multi-tenant serving through the
  ``QueryScheduler``: aggregate throughput vs. tenant count on shared
  switches, solo-vs-shared latency, with every tenant's result checked
  against its solo ``QueryPlan.run``.
* :func:`run_replay_bench` — trace-replay serving: Poisson, bursty,
  diurnal, and heavy-tailed Pareto arrival traces through the
  scheduler under a tight slot budget, reporting p50/p95/p99
  arrival-to-completion latency and slot occupancy from the per-tick
  telemetry probe.  Fully deterministic (tick-based metrics only), so
  CI asserts byte-identical payloads for the same seed.
* :func:`run_qos_bench` — the QoS subsystem's measured claim:
  interactive-class tail latency under saturating batch load with the
  ``tiers`` policy's slot preemption enabled vs. disabled, with every
  tenant (including the preempted ones) still identical to its solo
  ``QueryPlan.run``.  Deterministic for the same seed.
* :func:`run_chaos_bench` — the fault-injection benchmark: the same
  tenant set served with and without a seeded
  :class:`~repro.cluster.chaos.FailureSchedule` (shard kills with
  checkpointed query migration, a restart, worker window replays),
  reporting migrated-query counts, recovery ticks, and p99 inflation
  over the no-fault baseline — with every surviving tenant still
  byte-identical to its solo ``QueryPlan.run``.  Deterministic for the
  same seed.
* :func:`run_congestion_bench` — the transport benchmark: AIMD rate
  control (``docs/CONGESTION.md``) vs the fixed retransmission
  schedule across a loss × tenant-count × queue-capacity sweep, plus
  a deterministic weighted-fairness trial and a mixed-class serving
  run.  The headline: under finite switch ingress queues and loss,
  AIMD sustains at least the fixed schedule's goodput with a fraction
  of its retransmissions.  Deterministic for the same seed.
* :func:`run_load_bench` — the socket serving benchmark: a concurrent
  client swarm over real TCP connections against a live
  ``ReproServer`` (open-loop arrivals from the trace generators plus
  a closed-loop request/response phase), reporting wall-clock
  p50/p95/p99 alongside the tick-based percentiles.  The open-loop
  phase's ``tick_domain`` sub-object is byte-identical across runs
  (hold-barrier admission); the wall-clock numbers are not, by
  design.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Callable, Dict, List, Optional, Sequence


@dataclasses.dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure."""

    experiment_id: str
    title: str
    rows: List[Dict]
    notes: str = ""

    def render(self) -> str:
        """The experiment as an aligned text table."""
        header = f"== {self.experiment_id}: {self.title} =="
        body = format_table(self.rows)
        parts = [header, body]
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)


def format_table(rows: Sequence[Dict], float_digits: int = 4) -> str:
    """Align a list of dicts as a text table (column order = first row)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            if value != 0 and abs(value) < 10 ** -float_digits:
                return f"{value:.2e}"
            return f"{value:.{float_digits}f}"
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = [
        "  ".join(col.ljust(w) for col, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


@dataclasses.dataclass
class ConfidenceInterval:
    """Mean with a two-tailed Student-t 95% interval (the paper's §8.3
    methodology: five runs of each randomized algorithm)."""

    mean: float
    half_width: float
    runs: int

    @property
    def low(self) -> float:
        """Lower interval bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper interval bound."""
        return self.mean + self.half_width

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def repeat_with_ci(metric_fn, seeds: Sequence[int] = (0, 1, 2, 3, 4),
                   confidence: float = 0.95) -> ConfidenceInterval:
    """Run ``metric_fn(seed)`` per seed; return mean ± t-interval.

    Matches §8.3: "We ran each randomized algorithm five times and used
    two-tailed Student t-test to determine the 95% confidence intervals."
    """
    from scipy import stats

    values = [float(metric_fn(seed)) for seed in seeds]
    n = len(values)
    if n < 2:
        raise ValueError("need at least two runs for an interval")
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    t_crit = float(stats.t.ppf((1 + confidence) / 2, df=n - 1))
    half_width = t_crit * (variance / n) ** 0.5
    return ConfidenceInterval(mean=mean, half_width=half_width, runs=n)


def save_result(result: ExperimentResult,
                directory: Optional[str] = None) -> str:
    """Write the rendered experiment under ``results/`` and return the path."""
    directory = directory or os.environ.get("REPRO_RESULTS_DIR", "results")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{result.experiment_id}.txt")
    with open(path, "w") as f:
        f.write(result.render() + "\n")
    return path


# ---------------------------------------------------------------------------
# Machine-readable benchmark emission (BENCH_<name>.json)
# ---------------------------------------------------------------------------

def emit_bench_json(name: str, payload: Dict,
                    directory: Optional[str] = None,
                    prefix: str = "BENCH") -> str:
    """Write ``payload`` as ``<prefix>_<name>.json`` under the results
    dir (``BENCH_<name>.json`` by default; ``repro profile`` passes
    ``prefix="PROFILE"``).

    The JSON is the cross-PR perf record: CI runs the benches on tiny
    inputs, uploads these files as artifacts, and asserts their shape.
    """
    directory = directory or os.environ.get("REPRO_RESULTS_DIR", "results")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{prefix}_{name}.json")
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def _chunks(items: list, size: int):
    for start in range(0, len(items), size):
        yield items[start:start + size]


@dataclasses.dataclass
class _BenchCase:
    """One fig11 pruner workload: factory + stream + routing type."""

    name: str
    factory: Callable[[], object]
    stream: list
    query_type: Optional[str] = None
    two_pass: bool = False


def _fig11_cases(rows: int, seed: int) -> List[_BenchCase]:
    """The Figure 11 pruner configurations on their fig11-style streams."""
    from repro.core import (
        DistinctPruner,
        GroupByPruner,
        HavingPruner,
        JoinPruner,
        SkylinePruner,
        TopNRandomized,
    )
    from repro.core.join import JoinSide
    from repro.workloads.streams import (
        join_key_streams,
        keyed_value_stream,
        random_order_stream,
        random_points,
        value_stream,
    )

    keyed = keyed_value_stream(rows, max(1, rows // 40), seed=seed)
    half = rows // 2
    left, right = join_key_streams(half, half, overlap=0.25,
                                   key_space=1 << 22, seed=seed)
    join_stream = []
    for left_key, right_key in zip(left, right):
        join_stream.append((JoinSide.A, left_key))
        join_stream.append((JoinSide.B, right_key))
    total_mass = sum(value for _, value in keyed)
    return [
        _BenchCase("distinct", lambda: DistinctPruner(rows=4096, width=2,
                                                      seed=seed),
                   random_order_stream(rows, max(1, rows // 10), seed)),
        _BenchCase("skyline", lambda: SkylinePruner(dimensions=2, width=8),
                   random_points(max(1, rows // 3), dimensions=2,
                                 seed=seed)),
        _BenchCase("topn_rand", lambda: TopNRandomized(n=250, rows=4096,
                                                       width=8, seed=seed),
                   value_stream(rows, seed=seed)),
        _BenchCase("groupby", lambda: GroupByPruner(rows=4096, width=6,
                                                    seed=seed),
                   keyed, query_type="groupby"),
        _BenchCase("having", lambda: HavingPruner(
                       threshold=total_mass * 0.002, width=128, depth=3,
                       seed=seed),
                   keyed, query_type="having"),
        _BenchCase("join", lambda: JoinPruner(size_bits=256 * 1024 * 8,
                                              hashes=3, seed=seed),
                   join_stream, query_type="join", two_pass=True),
    ]


def _run_case_packet(pruner, stream, two_pass: bool):
    decisions = [pruner.offer(entry) for entry in stream]
    if two_pass:
        pruner.start_second_pass()
        decisions += [pruner.offer(entry) for entry in stream]
    return decisions


def _run_case_batched(pruner, stream, two_pass: bool, batch_size: int):
    decisions: List[bool] = []
    for chunk in _chunks(stream, batch_size):
        decisions += pruner.offer_batch(chunk)
    if two_pass:
        pruner.start_second_pass()
        for chunk in _chunks(stream, batch_size):
            decisions += pruner.offer_batch(chunk)
    return decisions


def _decision_fingerprint(decisions: Sequence[bool]) -> str:
    """A stable digest of a prune-decision vector (one byte per
    decision) — the deterministic projection CI compares run-to-run."""
    import hashlib

    return hashlib.sha256(bytes(bytearray(decisions))).hexdigest()


def run_fig11_scale_bench(rows: int = 60_000, shards: int = 1,
                          batch_size: int = 8192, seed: int = 0,
                          verify: bool = True,
                          parallel: bool = False) -> Dict:
    """The Figure 11 scale benchmark: per-packet vs batched dataplane.

    Runs every fig11 pruner over growing prefixes of its stream (three
    row counts up to ``rows``), once through the per-packet ``offer``
    path and once through the batched ``offer_batch`` path — both
    sharded across ``shards`` simulated switch pipelines when
    ``shards > 1`` — and records wall-clock timings, pruning fractions,
    speedups, and (with ``verify``) decision equivalence.

    ``parallel=True`` runs the batched path's shards on a process pool
    (:class:`~repro.cluster.runtime.ProcessPoolShardExecutor`) — the
    per-packet reference stays serial, and decisions must still match
    bit-for-bit.

    Returns the payload for ``BENCH_fig11.json``; the headline
    ``overall_speedup_at_largest`` is total per-packet time over total
    batched time at the largest row count.  The ``decision_domain``
    sub-object holds only deterministic fields (per-prefix prune
    counts and decision digests) — wall clocks live outside it, so CI
    can assert byte-identical decisions across repeat runs.
    """
    from repro.cluster.runtime import (
        ProcessPoolShardExecutor,
        make_sharded,
    )

    if rows < 40:
        raise ValueError(f"rows too small for the fig11 streams: {rows}")
    row_counts = sorted({max(10, rows // 4), max(10, rows // 2), rows})
    cases = _fig11_cases(rows, seed)
    algorithms: Dict[str, List[Dict]] = {}
    decision_domain: Dict[str, List[Dict]] = {}
    totals = {count: {"packet": 0.0, "batch": 0.0} for count in row_counts}
    for case in cases:
        series = []
        fingerprints = []
        for count in row_counts:
            prefix = case.stream[:max(1, round(len(case.stream)
                                               * count / rows))]
            packet_pruner = make_sharded(case.factory, shards,
                                         case.query_type, seed=seed)
            start = time.perf_counter()
            packet_decisions = _run_case_packet(packet_pruner, prefix,
                                                case.two_pass)
            packet_seconds = time.perf_counter() - start
            batch_pruner = make_sharded(case.factory, shards,
                                        case.query_type, seed=seed,
                                        parallel=parallel)
            start = time.perf_counter()
            batch_decisions = _run_case_batched(batch_pruner, prefix,
                                                case.two_pass, batch_size)
            batch_seconds = time.perf_counter() - start
            equivalent = (packet_decisions == batch_decisions
                          and packet_pruner.stats == batch_pruner.stats
                          ) if verify else None
            stats = batch_pruner.stats
            if isinstance(batch_pruner, ProcessPoolShardExecutor):
                batch_pruner.close()
            series.append({
                "rows": len(prefix),
                "packet_seconds": packet_seconds,
                "batch_seconds": batch_seconds,
                "speedup": (packet_seconds / batch_seconds
                            if batch_seconds > 0 else None),
                "unpruned_fraction": stats.unpruned_fraction,
                "pruned_fraction": stats.pruned_fraction,
                "equivalent": equivalent,
            })
            fingerprints.append({
                "rows": len(prefix),
                "offered": stats.offered,
                "pruned": stats.pruned,
                "decisions_sha256": _decision_fingerprint(batch_decisions),
                "equivalent": equivalent,
            })
            totals[count]["packet"] += packet_seconds
            totals[count]["batch"] += batch_seconds
        algorithms[case.name] = series
        decision_domain[case.name] = fingerprints
    largest = totals[row_counts[-1]]
    return {
        "benchmark": "fig11_scale",
        "rows": rows,
        "row_counts": row_counts,
        "shards": shards,
        "batch_size": batch_size,
        "seed": seed,
        "parallel_shards": parallel,
        "algorithms": algorithms,
        "decision_domain": decision_domain,
        "totals": {
            str(count): {
                "packet_seconds": value["packet"],
                "batch_seconds": value["batch"],
                "speedup": (value["packet"] / value["batch"]
                            if value["batch"] > 0 else None),
            }
            for count, value in totals.items()
        },
        "overall_speedup_at_largest": (largest["packet"] / largest["batch"]
                                       if largest["batch"] > 0 else None),
        "all_equivalent": (all(point["equivalent"]
                               for series in algorithms.values()
                               for point in series)
                           if verify else None),
    }


#: Scenarios the e2e bench drives at the configured loss rate.
E2E_BENCH_SCENARIOS = ("tpch_q3", "distinct", "groupby_sum", "join")
#: Loss rates swept with the sweep scenario (robustness trend).
E2E_LOSS_SWEEP = (0.0, 0.05, 0.15)


def run_e2e_bench(rows: int = 1200, shards: int = 2,
                  loss_rate: float = 0.05, reorder_window: int = 2,
                  seed: int = 0,
                  scenarios: Sequence[str] = E2E_BENCH_SCENARIOS,
                  loss_sweep: Sequence[float] = E2E_LOSS_SWEEP,
                  sweep_scenario: str = "distinct") -> Dict:
    """End-to-end pipeline benchmark over the full simulated cluster.

    Each scenario runs twice through :class:`ClusterSimulation` — once
    with the pipelined (batched ``offer_batch``) switch frontend, once
    with per-packet dispatch — under identical channel seeds, so the
    delivered streams are bit-identical and the timing delta is pure
    dispatch cost.  Every run is checked for result equivalence against
    the functional ``QueryPlan.run`` path.  A loss-rate sweep of
    ``sweep_scenario`` records how retransmissions and ticks grow with
    loss.  Returns the payload for ``BENCH_e2e.json``.
    """
    from repro.cluster.simulation import (
        ClusterSimulation,
        SimulationConfig,
        build_scenario,
    )

    def run_case(name: str, loss: float) -> Dict:
        query, tables = build_scenario(name, rows=rows, seed=seed)
        row: Dict = {"scenario": name, "loss_rate": loss}
        results = {}
        for mode, pipelined in (("pipelined", True), ("sequential", False)):
            config = SimulationConfig(
                loss_rate=loss, reorder_window=reorder_window,
                shards=shards, seed=seed, pipelined=pipelined,
            )
            report = ClusterSimulation(config).run(query, tables)
            results[mode] = report
            row[f"{mode}_seconds"] = report.wall_seconds
            row[f"{mode}_equivalent"] = report.equivalent
            row[f"{mode}_retransmissions"] = report.retransmissions
            row[f"{mode}_ticks"] = report.ticks
        row["speedup"] = (
            row["sequential_seconds"] / row["pipelined_seconds"]
            if row["pipelined_seconds"] > 0 else None
        )
        row["entries"] = results["pipelined"].entries
        row["delivered"] = results["pipelined"].delivered
        row["switch_pruned"] = results["pipelined"].switch_pruned
        row["packets_dropped"] = results["pipelined"].packets_dropped
        row["modes_match"] = (
            results["pipelined"].result == results["sequential"].result
            and results["pipelined"].passes == results["sequential"].passes
        )
        return row

    case_rows = [run_case(name, loss_rate) for name in scenarios]
    sweep_rows = [run_case(sweep_scenario, loss) for loss in loss_sweep]
    all_rows = case_rows + sweep_rows
    total_sequential = sum(r["sequential_seconds"] for r in all_rows)
    total_pipelined = sum(r["pipelined_seconds"] for r in all_rows)
    return {
        "benchmark": "e2e_pipeline",
        "rows": rows,
        "shards": shards,
        "loss_rate": loss_rate,
        "reorder_window": reorder_window,
        "seed": seed,
        "scenarios": case_rows,
        "loss_sweep": sweep_rows,
        "total_sequential_seconds": total_sequential,
        "total_pipelined_seconds": total_pipelined,
        "overall_speedup": (total_sequential / total_pipelined
                            if total_pipelined > 0 else None),
        "all_equivalent": all(
            r["pipelined_equivalent"] and r["sequential_equivalent"]
            and r["modes_match"] for r in all_rows
        ),
    }


def run_concurrency_bench(max_tenants: int = 8, rows: int = 240,
                          loss_rate: float = 0.05,
                          reorder_window: int = 1, shards: int = 1,
                          seed: int = 0,
                          scenario_mix: Optional[Sequence[str]] = None,
                          ) -> Dict:
    """Multi-tenant serving benchmark over shared simulated switches.

    For tenant counts 1, 2, 4, ... up to ``max_tenants`` the same mix
    of scenarios is served concurrently by the ``QueryScheduler`` (all
    slots open, so concurrency is bounded only by the fleet size), and
    the makespan is compared against the *sum of solo latencies* of the
    same tenants run back-to-back through ``ClusterSimulation`` under
    identical per-tenant configs.  Every tenant's result, solo and
    shared, is checked against ``QueryPlan.run``.

    Time is measured in event-loop **ticks**, the simulation's native
    clock (one tick = one protocol round: windows fill, the switch
    drains each flow's arrival batch, ACKs return).  N tenants' passes
    advance in the *same* global ticks, so the shared makespan is about
    the slowest tenant's solo latency rather than the sum — aggregate
    throughput (entries per tick) scales with tenant count while each
    tenant's own latency stays at its solo tick count.  That is the
    serving claim this benchmark pins down, and because ticks are
    deterministic (seeded channels), CI can assert it exactly; wall
    seconds are also recorded, but they only measure this process's
    Python time, which is serial across tenants.

    Returns the payload for ``BENCH_concurrency.json``; the headline
    ``throughput_scaling`` is entries-per-tick at ``max_tenants`` over
    entries-per-tick at one tenant.
    """
    from repro.cluster.scheduler import (
        DEFAULT_TENANT_MIX,
        QueryScheduler,
        SchedulerConfig,
        tenant_specs,
    )
    from repro.cluster.simulation import ClusterSimulation, build_scenario

    if max_tenants < 1:
        raise ValueError(f"max_tenants must be >= 1, got {max_tenants}")
    mix = tuple(scenario_mix or DEFAULT_TENANT_MIX)
    counts = [1]
    while counts[-1] * 2 <= max_tenants:
        counts.append(counts[-1] * 2)
    if counts[-1] != max_tenants:
        counts.append(max_tenants)

    def config_for(n: int) -> SchedulerConfig:
        return SchedulerConfig(slots=n, loss_rate=loss_rate,
                               reorder_window=reorder_window,
                               shards=shards, seed=seed)

    # Solo baselines: each tenant of the largest fleet, run alone under
    # exactly the config the scheduler would give it.
    specs = tenant_specs(max_tenants, rows=rows, seed=seed, mix=mix)
    solo_rows: List[Dict] = []
    full_config = config_for(max_tenants)
    for index, spec in enumerate(specs):
        query, tables = build_scenario(spec.scenario, rows=spec.rows,
                                       seed=spec.seed)
        sim = ClusterSimulation(full_config.tenant_simulation_config(index))
        report = sim.run(query, tables)
        solo_rows.append({
            "tenant": spec.tenant,
            "scenario": spec.scenario,
            "solo_ticks": report.ticks,
            "solo_seconds": report.wall_seconds,
            "entries": report.entries,
            "equivalent": report.equivalent,
        })

    runs: List[Dict] = []
    for n in counts:
        scheduler = QueryScheduler(config_for(n))
        report = scheduler.serve(tenant_specs(n, rows=rows, seed=seed,
                                              mix=mix))
        sum_solo_ticks = sum(row["solo_ticks"] for row in solo_rows[:n])
        served = report.served
        runs.append({
            "tenants": n,
            "served": len(served),
            "makespan_ticks": report.ticks,
            "makespan_seconds": report.wall_seconds,
            "entries": report.entries,
            "delivered": report.delivered,
            "throughput_entries_per_tick": (report.entries / report.ticks
                                            if report.ticks else None),
            "sum_solo_ticks": sum_solo_ticks,
            "consolidation_speedup": (sum_solo_ticks / report.ticks
                                      if report.ticks else None),
            "mean_service_ticks": (sum(t.service_ticks for t in served)
                                   / len(served) if served else None),
            "mean_wait_ticks": (sum(t.wait_ticks for t in served)
                                / len(served) if served else None),
            "all_equivalent": report.all_equivalent,
        })

    first, last = runs[0], runs[-1]
    scaling = None
    if (first["throughput_entries_per_tick"]
            and last["throughput_entries_per_tick"]):
        scaling = (last["throughput_entries_per_tick"]
                   / first["throughput_entries_per_tick"])
    return {
        "benchmark": "concurrency",
        "max_tenants": max_tenants,
        "tenant_counts": counts,
        "rows": rows,
        "loss_rate": loss_rate,
        "reorder_window": reorder_window,
        "shards": shards,
        "seed": seed,
        "scenario_mix": list(mix),
        "solo": solo_rows,
        "runs": runs,
        "throughput_scaling": scaling,
        "consolidation_speedup_at_max": last["consolidation_speedup"],
        "all_equivalent": (
            all(row["equivalent"] for row in solo_rows)
            and all(run["all_equivalent"] for run in runs)
        ),
    }


def run_replay_bench(queries: int = 8, rows: int = 100, slots: int = 2,
                     loss_rate: float = 0.02, reorder_window: int = 1,
                     shards: int = 1, seed: int = 0,
                     processes: Optional[Sequence[str]] = None,
                     scenario_mix: Optional[Sequence[str]] = None,
                     ) -> Dict:
    """Trace-replay benchmark: tail latency under arrival processes.

    For each arrival process (Poisson, bursty, diurnal by default) a
    ``queries``-query trace is generated deterministically from ``seed``
    and replayed through the :class:`QueryScheduler` under a tight
    ``slots`` budget, so queueing actually happens and the latency
    *tail* separates from the median — the serving behavior the
    back-to-back ``concurrency`` bench cannot expose.  The burst trace
    packs ``2 * slots`` arrivals into a single tick, guaranteeing queue
    pressure.  Every tenant's result is checked against its solo
    ``QueryPlan.run``.

    The payload (``BENCH_replay.json``) is **fully deterministic**: all
    metrics are tick-based (:meth:`ScheduleReport.to_payload` excludes
    wall-clock time), so CI asserts byte-identical output for the same
    seed.  Headline keys: ``p99_latency_ticks`` and ``peak_occupancy``
    per process.
    """
    from repro.cluster.scheduler import SchedulerConfig, replay_trace
    from repro.workloads.traces import (
        ARRIVAL_PROCESSES,
        DEFAULT_REPLAY_MIX,
        generate_trace,
    )

    if queries < 1:
        raise ValueError(f"queries must be >= 1, got {queries}")
    processes = tuple(processes or ARRIVAL_PROCESSES)
    mix = tuple(scenario_mix or DEFAULT_REPLAY_MIX)
    config = SchedulerConfig(slots=slots, loss_rate=loss_rate,
                             reorder_window=reorder_window,
                             shards=shards, seed=seed)
    runs: List[Dict] = []
    for process in processes:
        trace = generate_trace(process, queries=queries, rows=rows,
                               seed=seed, mix=mix,
                               burst_size=2 * slots)
        report = replay_trace(trace, config, apply_overrides=False)
        runs.append({
            "process": process,
            "queries": len(trace.queries),
            "trace_duration_ticks": trace.duration_ticks,
            **report.to_payload(),
        })
    return {
        "benchmark": "trace_replay",
        "queries": queries,
        "rows": rows,
        "slots": slots,
        "loss_rate": loss_rate,
        "reorder_window": reorder_window,
        "shards": shards,
        "seed": seed,
        "scenario_mix": list(mix),
        "processes": list(processes),
        "runs": runs,
        "p99_latency_ticks": {run["process"]: run["latency"]["p99_ticks"]
                              for run in runs},
        "peak_occupancy": {run["process"]: run["occupancy"]["peak"]
                           for run in runs},
        "all_equivalent": all(run["all_equivalent"] is True
                              for run in runs),
    }


#: Long-running scenarios the QoS bench uses as saturating batch load.
QOS_BATCH_MIX = ("groupby_sum", "skyline", "having_sum")
#: Short scenarios standing in for latency-sensitive interactive work.
QOS_INTERACTIVE_MIX = ("distinct", "filter")


def run_qos_bench(batch_tenants: int = 3, interactive_tenants: int = 4,
                  batch_rows: int = 260, interactive_rows: int = 60,
                  slots: int = 3, loss_rate: float = 0.02,
                  reorder_window: int = 1, shards: int = 1,
                  seed: int = 0, interactive_stride: int = 45,
                  first_interactive_tick: int = 15) -> Dict:
    """QoS benchmark: interactive p99 with vs. without slot preemption.

    ``batch_tenants`` long-running batch-class tenants arrive at tick 0
    and saturate the slot budget; ``interactive_tenants`` short
    interactive-class tenants then arrive every ``interactive_stride``
    ticks.  The same tenant set is served twice under the three-tier
    policy (``docs/QOS.md``) — once with preemption enabled
    (``tiers``), once disabled (``tiers-no-preempt``) — and the
    per-class latency percentiles from ``ScheduleReport`` are compared.
    The headline ``interactive_p99_improvement`` is the no-preemption
    p99 over the preemption p99 (> 1 means preemption helped), while
    ``all_equivalent`` certifies that every tenant — *including the
    preempted-and-resumed batch tenants* — still produced a result
    identical to its solo ``QueryPlan.run``.

    The payload (``BENCH_qos.json``) is fully deterministic for the
    same seed (tick-based metrics only); CI double-runs it and asserts
    byte identity plus the improvement factor.
    """
    from repro.cluster.qos import tiers_policy
    from repro.cluster.scheduler import (
        QueryScheduler,
        SchedulerConfig,
        TenantSpec,
    )

    if batch_tenants < 1 or interactive_tenants < 1:
        raise ValueError("the QoS bench needs at least one tenant of "
                         "each class")
    specs = [
        TenantSpec(tenant=f"batch-{i}",
                   scenario=QOS_BATCH_MIX[i % len(QOS_BATCH_MIX)],
                   rows=batch_rows, seed=seed + i, arrival_tick=0,
                   priority="batch")
        for i in range(batch_tenants)
    ] + [
        TenantSpec(tenant=f"interactive-{i}",
                   scenario=QOS_INTERACTIVE_MIX[
                       i % len(QOS_INTERACTIVE_MIX)],
                   rows=interactive_rows, seed=seed + 101 + i,
                   arrival_tick=first_interactive_tick
                   + i * interactive_stride,
                   priority="interactive")
        for i in range(interactive_tenants)
    ]
    runs: List[Dict] = []
    for policy in (tiers_policy(preemption=True),
                   tiers_policy(preemption=False)):
        config = SchedulerConfig(slots=slots, policy=policy,
                                 loss_rate=loss_rate,
                                 reorder_window=reorder_window,
                                 shards=shards, seed=seed)
        report = QueryScheduler(config).serve(specs)
        runs.append({
            "policy": policy.name,
            "preemption": policy.preemption,
            **report.to_payload(),
        })
    with_preempt, without = runs
    p99_on = with_preempt["classes"]["interactive"]["latency"]["p99_ticks"]
    p99_off = without["classes"]["interactive"]["latency"]["p99_ticks"]
    return {
        "benchmark": "qos",
        "batch_tenants": batch_tenants,
        "interactive_tenants": interactive_tenants,
        "batch_rows": batch_rows,
        "interactive_rows": interactive_rows,
        "slots": slots,
        "loss_rate": loss_rate,
        "reorder_window": reorder_window,
        "shards": shards,
        "seed": seed,
        "interactive_stride": interactive_stride,
        "runs": runs,
        "interactive_p99_ticks": {run["policy"]: run["classes"]
                                  ["interactive"]["latency"]["p99_ticks"]
                                  for run in runs},
        "batch_p99_ticks": {run["policy"]: run["classes"]
                            ["batch"]["latency"]["p99_ticks"]
                            for run in runs},
        # The timeline interleaves preempt and resume entries; count
        # only actual preemptions.
        "preemption_events": {
            run["policy"]: sum(event["kind"] == "preempt"
                               for event in run["preemptions"])
            for run in runs},
        "interactive_p99_improvement": (p99_off / p99_on
                                        if p99_on else None),
        "all_equivalent": all(run["all_equivalent"] is True
                              for run in runs),
    }


#: Scenario rotation for the chaos bench's tenants: long-running
#: sketchy state (group-by), two-pass (join), and register-file state
#: (distinct, having) so migrated checkpoints carry every pruner shape.
CHAOS_MIX = ("groupby_sum", "join", "distinct", "having_sum")


def run_chaos_bench(tenants: int = 4, rows: int = 260, slots: int = 4,
                    loss_rate: float = 0.02, reorder_window: int = 1,
                    shards: int = 3, seed: int = 0,
                    kills: int = 2) -> Dict:
    """Chaos benchmark: serving under seeded fault injection.

    The same ``tenants``-tenant set (rotating through
    :data:`CHAOS_MIX`) is served twice through the
    :class:`QueryScheduler`: once fault-free (the baseline), then with
    a :func:`~repro.cluster.chaos.generate_schedule` failure schedule
    sized to land inside the baseline's makespan — shard kills (whose
    installed queries are suspended via checkpoints and parked with
    survivors), restarts (which move the state home again), and worker
    kills (whose unacked §7.2 windows a survivor replays).  The
    headline claims: ``migrations`` queries were actually migrated
    mid-run, ``recovery_ticks`` measures outage length, and
    ``all_equivalent`` certifies that *every* tenant of *both* runs
    still produced a result identical to its solo ``QueryPlan.run`` —
    survivor equivalence under fire.  ``p99_inflation`` and
    ``makespan_inflation`` price the faults against the baseline.

    The payload (``BENCH_chaos.json``) is fully deterministic for the
    same seed (tick-based metrics only, schedule generation is pure);
    CI double-runs it, asserts byte identity, at least one migration,
    and the equivalence bit.
    """
    from repro.cluster.chaos import ChaosController, generate_schedule
    from repro.cluster.scheduler import (
        QueryScheduler,
        SchedulerConfig,
        tenant_specs,
    )

    if tenants < 1:
        raise ValueError(f"tenants must be >= 1, got {tenants}")
    if shards < 2:
        raise ValueError("the chaos bench kills switch pipelines: "
                         f"shards must be >= 2, got {shards}")
    if kills < 1:
        raise ValueError(f"kills must be >= 1, got {kills}")
    config = SchedulerConfig(slots=slots, loss_rate=loss_rate,
                             reorder_window=reorder_window,
                             shards=shards, seed=seed)
    specs = tenant_specs(tenants, rows=rows, seed=seed, mix=CHAOS_MIX)
    baseline = QueryScheduler(config).serve(specs)
    # Size the schedule inside the fault-free makespan so every kill
    # lands while queries are actually in flight.
    horizon = max(6, baseline.ticks * 2 // 3)
    schedule = generate_schedule(seed=seed, kills=kills, shards=shards,
                                 workers=config.workers,
                                 horizon=horizon)
    controller = ChaosController(schedule)
    chaos = QueryScheduler(config).serve(specs, chaos=controller)
    summary = controller.summary()
    baseline_payload = baseline.to_payload()
    chaos_payload = chaos.to_payload()
    base_p99 = baseline_payload["latency"]["p99_ticks"]
    chaos_p99 = chaos_payload["latency"]["p99_ticks"]
    return {
        "benchmark": "chaos",
        "tenants": tenants,
        "rows": rows,
        "slots": slots,
        "loss_rate": loss_rate,
        "reorder_window": reorder_window,
        "shards": shards,
        "seed": seed,
        "kills": kills,
        "scenario_mix": list(CHAOS_MIX),
        "schedule": [event.to_record() for event in schedule.events],
        "baseline": baseline_payload,
        "chaos": chaos_payload,
        "timeline": summary["timeline"],
        "events_applied": summary["applied"],
        "events_pending": summary["pending"],
        "migrations": summary["migrations"],
        "restored": summary["restored"],
        "replayed_packets": summary["replayed_packets"],
        "recovery_ticks": summary["recovery_ticks"],
        "p99_inflation": (chaos_p99 / base_p99 if base_p99 else None),
        "makespan_inflation": (chaos.ticks / baseline.ticks
                               if baseline.ticks else None),
        "all_equivalent": (baseline.all_equivalent is True
                           and chaos.all_equivalent is True),
    }


#: Weights of the synthetic shared-bottleneck fairness trial: the
#: ``tiers`` policy's class weights (interactive/standard/batch).
FAIRNESS_WEIGHTS = {"interactive": 4.0, "standard": 2.0, "batch": 1.0}


def _fairness_trial(weights: Dict[str, float], capacity: int = 8,
                    ticks: int = 400, cooldown: int = 8) -> Dict:
    """Weighted AIMD controllers sharing one deterministic bottleneck.

    Every tick each controller drains its token bucket into a shared
    queue of ``capacity`` slots; overflow is assigned back to senders
    proportionally (largest-remainder, name-ordered — deterministic),
    surviving packets are ACKed, and every controller sees the same
    queue signal.  This isolates the weighted-fairness claim of
    ``docs/CONGESTION.md`` from protocol noise: synchronized decreases
    scale every rate by ``beta`` while additive recovery runs at
    ``additive * weight``, so steady-state mean rates settle
    proportional to weight.  Returns per-name mean rates over the
    second half of the trial plus the normalized spread.
    """
    from repro.net.congestion import RateController

    controllers = {
        name: RateController(weight=weight, initial=2.0,
                             cooldown=cooldown)
        for name, weight in weights.items()
    }
    names = sorted(controllers)
    rate_sums = {name: 0.0 for name in names}
    delivered = {name: 0 for name in names}
    measured_from = ticks // 2
    for tick in range(ticks):
        sends = {}
        for name in names:
            ctrl = controllers[name]
            ctrl.advance()
            count = 0
            while ctrl.try_send():
                count += 1
            sends[name] = count
        total = sum(sends.values())
        overflow = max(0, total - capacity)
        drops = {name: 0 for name in names}
        if overflow and total:
            shares = {name: overflow * sends[name] / total
                      for name in names}
            drops = {name: int(shares[name]) for name in names}
            remainder = overflow - sum(drops.values())
            for name in sorted(names, key=lambda n: (-(shares[n]
                                                       - drops[n]), n)):
                if remainder <= 0:
                    break
                if drops[name] < sends[name]:
                    drops[name] += 1
                    remainder -= 1
        depth = min(total, capacity)
        for name in names:
            ctrl = controllers[name]
            acked = sends[name] - drops[name]
            delivered[name] += acked
            for _ in range(acked):
                ctrl.on_ack()
            ctrl.on_queue_signal(depth, capacity, drops[name])
        if tick >= measured_from:
            for name in names:
                rate_sums[name] += controllers[name].rate
    span = ticks - measured_from
    mean_rates = {name: rate_sums[name] / span for name in names}
    normalized = {name: mean_rates[name] / weights[name]
                  for name in names}
    spread = (max(normalized.values()) / min(normalized.values())
              if min(normalized.values()) > 0 else None)
    return {
        "capacity": capacity,
        "ticks": ticks,
        "weights": dict(weights),
        "mean_rates": {name: round(mean_rates[name], 4)
                       for name in names},
        "delivered": delivered,
        "normalized_rates": {name: round(normalized[name], 4)
                             for name in names},
        "normalized_spread": (round(spread, 4)
                              if spread is not None else None),
    }


def run_congestion_bench(rows: int = 200, workers: int = 4,
                         shards: int = 1, seed: int = 0,
                         slots: int = 4,
                         losses: Sequence[float] = (0.0, 0.02, 0.05),
                         tenant_counts: Sequence[int] = (1, 4),
                         capacities: Sequence[Optional[int]] = (4, None),
                         fairness_ticks: int = 400) -> Dict:
    """Congestion benchmark: AIMD rate control vs the fixed schedule.

    Three sections (``docs/CONGESTION.md``):

    * ``sweep`` — loss × tenant-count × queue-capacity cells, each
      served twice through the :class:`QueryScheduler` (``fixed`` then
      ``aimd``), recording makespan, goodput (delivered entries per
      tick), retransmission overhead (retransmissions per entry), and
      channel drops.  The headline ``congested_goodput_ratio_min`` is
      the worst aimd/fixed goodput ratio over the *congested* cells
      (finite capacity, loss >= 0.02) — the cells where the fixed
      schedule's retransmission storms sustain queue overflow; CI
      asserts it stays >= 1.  With unbounded queues the fixed schedule
      is already near-optimal and pacing can only add latency, which
      the uncongested cells document rather than hide.
    * ``fairness`` — the synthetic shared-bottleneck trial
      (:func:`_fairness_trial`): tiers-policy class weights mapped to
      controllers, steady-state mean rates proportional to weight.
    * ``serving`` — an end-to-end mixed-class run (tiers policy,
      interactive + batch tenants, finite queues) under both modes,
      recording per-class latency and transport goodput.

    Every tenant of every cell is checked against its solo
    ``QueryPlan.run`` (``all_equivalent``) — congestion control moves
    protocol accounting, never results.  The payload
    (``BENCH_congestion.json``) is fully deterministic for the same
    seed (tick-based metrics only); CI double-runs it and asserts byte
    identity.
    """
    from repro.cluster.scheduler import (
        QueryScheduler,
        SchedulerConfig,
        tenant_specs,
    )

    if rows < 20:
        raise ValueError(f"rows must be >= 20, got {rows}")
    if slots < 2:
        raise ValueError(f"slots must be >= 2, got {slots}")

    def _serve(mode: str, loss: float, tenants: int,
               capacity: Optional[int], policy: Optional[str] = None,
               priorities: Optional[Sequence[str]] = None) -> Dict:
        from repro.cluster.qos import parse_policy

        config = SchedulerConfig(
            slots=slots,
            policy=(parse_policy(policy) if policy
                    else SchedulerConfig().policy),
            workers=workers, loss_rate=loss, shards=shards, seed=seed,
            congestion=mode, queue_capacity=capacity)
        specs = tenant_specs(tenants, rows=rows, seed=seed,
                             mix=("distinct",), priorities=priorities)
        report = QueryScheduler(config).serve(specs)
        retransmissions = sum(p.retransmissions
                              for t in report.tenants
                              for p in t.passes)
        dropped = sum(p.packets_dropped
                      for t in report.tenants for p in t.passes)
        entries = report.entries
        return {
            "report": report,
            "ticks": report.ticks,
            "entries": entries,
            "delivered": report.delivered,
            "goodput_entries_per_tick": (
                round(report.delivered / report.ticks, 4)
                if report.ticks else None),
            "retransmissions": retransmissions,
            "retransmission_overhead": (
                round(retransmissions / entries, 4) if entries
                else None),
            "packets_dropped": dropped,
            "all_equivalent": report.all_equivalent,
        }

    def _strip(cell: Dict) -> Dict:
        return {key: value for key, value in cell.items()
                if key != "report"}

    sweep: List[Dict] = []
    all_equivalent = True
    for loss in losses:
        for tenants in tenant_counts:
            for capacity in capacities:
                fixed = _serve("fixed", loss, tenants, capacity)
                aimd = _serve("aimd", loss, tenants, capacity)
                all_equivalent = (all_equivalent
                                  and fixed["all_equivalent"] is True
                                  and aimd["all_equivalent"] is True)
                goodput_ratio = (
                    round(aimd["goodput_entries_per_tick"]
                          / fixed["goodput_entries_per_tick"], 4)
                    if fixed["goodput_entries_per_tick"] else None)
                retx_ratio = (
                    round(aimd["retransmission_overhead"]
                          / fixed["retransmission_overhead"], 4)
                    if fixed["retransmission_overhead"] else None)
                sweep.append({
                    "loss_rate": loss,
                    "tenants": tenants,
                    "queue_capacity": capacity,
                    "congested": capacity is not None and loss >= 0.02,
                    "fixed": _strip(fixed),
                    "aimd": _strip(aimd),
                    "goodput_ratio": goodput_ratio,
                    "retransmission_ratio": retx_ratio,
                })

    congested = [cell for cell in sweep
                 if cell["queue_capacity"] is not None
                 and cell["loss_rate"] >= 0.02]
    goodput_ratios = [cell["goodput_ratio"] for cell in congested
                      if cell["goodput_ratio"] is not None]
    retx_ratios = [cell["retransmission_ratio"] for cell in congested
                   if cell["retransmission_ratio"] is not None]

    fairness = _fairness_trial(FAIRNESS_WEIGHTS, ticks=fairness_ticks)

    serving: Dict[str, Dict] = {}
    for mode in ("fixed", "aimd"):
        cell = _serve(mode, 0.02, 4, 4, policy="tiers",
                      priorities=("interactive", "batch"))
        report = cell.pop("report")
        classes = {}
        for name, summary in report.class_summary().items():
            class_entries = sum(t.entries for t in report.tenants
                                if t.qos_class == name)
            class_service = sum(t.service_ticks or 0
                                for t in report.tenants
                                if t.qos_class == name)
            classes[name] = {
                "tenants": summary["tenants"],
                "latency": summary["latency"],
                "entries": class_entries,
                "service_ticks": class_service,
                "goodput_entries_per_tick": (
                    round(class_entries / class_service, 4)
                    if class_service else None),
            }
        all_equivalent = (all_equivalent
                          and cell["all_equivalent"] is True)
        serving[mode] = {**cell, "classes": classes}

    def _class_ratio(mode: str) -> Optional[float]:
        classes = serving[mode]["classes"]
        interactive = classes.get("interactive", {}).get(
            "goodput_entries_per_tick")
        batch = classes.get("batch", {}).get("goodput_entries_per_tick")
        if not interactive or not batch:
            return None
        return round(interactive / batch, 4)

    return {
        "benchmark": "congestion",
        "rows": rows,
        "workers": workers,
        "shards": shards,
        "seed": seed,
        "slots": slots,
        "losses": list(losses),
        "tenant_counts": list(tenant_counts),
        "capacities": list(capacities),
        "sweep": sweep,
        "fairness": fairness,
        "serving": serving,
        "interactive_batch_goodput_ratio": {
            mode: _class_ratio(mode) for mode in serving},
        "congested_goodput_ratio_min": (min(goodput_ratios)
                                        if goodput_ratios else None),
        "congested_goodput_ratio_mean": (
            round(sum(goodput_ratios) / len(goodput_ratios), 4)
            if goodput_ratios else None),
        "congested_retransmission_ratio_max": (max(retx_ratios)
                                               if retx_ratios else None),
        "all_equivalent": all_equivalent,
    }


def _schedule_fingerprint(report) -> str:
    """A stable digest of a ScheduleReport's decision domain: one row
    per tenant, tick-domain fields only (no wall clocks) — the sha256
    CI compares between an obs-off and an obs-on run."""
    import hashlib

    rows = [{
        "tenant": t.spec.tenant,
        "scenario": t.spec.scenario,
        "status": t.status,
        "admitted_tick": t.admitted_tick,
        "completed_tick": t.completed_tick,
        "entries": t.entries,
        "delivered": t.delivered,
        "preemptions": t.preemptions,
        "equivalent": t.equivalent,
    } for t in report.tenants]
    payload = json.dumps({"ticks": report.ticks, "tenants": rows},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_obs_bench(tenants: int = 4, rows: int = 240, slots: int = 4,
                  loss_rate: float = 0.05, reorder_window: int = 0,
                  shards: int = 2, seed: int = 0,
                  fig11_rows: int = 40_000, repeats: int = 3) -> Dict:
    """Observability overhead + invariants benchmark.

    Three claims of docs/OBSERVABILITY.md, measured so CI can gate
    them (the ``decision_domain`` sub-object is deterministic; wall
    clocks live outside it):

    * **Decisions are obs-invariant.**  The same seeded fleet is
      served with ``obs=None`` and with a full
      :class:`~repro.obs.Observability` (spans on); the tick-domain
      schedule fingerprints must be sha256-identical
      (``decisions_identical``).
    * **Exports are deterministic.**  Every obs-on repeat renders its
      OpenMetrics text and Chrome trace; all repeats must hash
      identically (``exports_identical``).
    * **Overhead is bounded.**  Interleaved obs-off/obs-on serving
      walls (median of ``repeats``) give ``serving.overhead_ratio``
      (recorded, not gated: on CI-sized serves the ~20ms baseline
      makes the ratio mostly polling constant-cost); a fig11-style
      batched kernel run bare vs. with per-batch counter publication
      gives ``fig11.overhead_ratio`` — the budget that the hot
      dataplane loop stays at uninstrumented cost.  CI asserts
      ``fig11.overhead_ratio <= 1.10``; ``overhead_ratio_max`` is
      the informational max of both measured ratios.
    """
    from repro.cluster.scheduler import (
        QueryScheduler,
        SchedulerConfig,
        tenant_specs,
    )
    from repro.obs import Observability
    import hashlib

    def config_for(obs) -> SchedulerConfig:
        return SchedulerConfig(slots=slots, loss_rate=loss_rate,
                               reorder_window=reorder_window,
                               shards=shards, seed=seed, obs=obs)

    def serve_once(obs):
        specs = tenant_specs(tenants, rows=rows, seed=seed)
        start = time.perf_counter()
        report = QueryScheduler(config_for(obs)).serve(specs)
        return report, time.perf_counter() - start

    off_walls: List[float] = []
    on_walls: List[float] = []
    off_prints: List[str] = []
    on_prints: List[str] = []
    metric_hashes: List[str] = []
    span_hashes: List[str] = []
    last_on = None
    for _ in range(repeats):
        report, wall = serve_once(None)
        off_walls.append(wall)
        off_prints.append(_schedule_fingerprint(report))
        obs = Observability(spans=True)
        report, wall = serve_once(obs)
        on_walls.append(wall)
        on_prints.append(_schedule_fingerprint(report))
        text = obs.registry.render_openmetrics(tick=report.ticks)
        metric_hashes.append(
            hashlib.sha256(text.encode("utf-8")).hexdigest())
        trace = json.dumps(obs.tracer.to_chrome_trace(),
                           sort_keys=True, separators=(",", ":"))
        span_hashes.append(
            hashlib.sha256(trace.encode("utf-8")).hexdigest())
        last_on = (report, obs)
    report, obs = last_on
    serving_off = sorted(off_walls)[len(off_walls) // 2]
    serving_on = sorted(on_walls)[len(on_walls) // 2]
    serving_ratio = serving_on / serving_off if serving_off > 0 else None

    # The fig11 kernel leg: the batched dataplane loop bare, then with
    # the per-batch counter publication instrumentation of that path
    # would cost.  offer_batch itself carries no hooks — this measures
    # (and pins) the price of keeping it that way.
    from repro.core.distinct import DistinctPruner
    from repro.workloads.streams import random_order_stream

    stream = random_order_stream(fig11_rows,
                                 max(1, fig11_rows // 10), seed)
    fig11_off: List[float] = []
    fig11_on: List[float] = []
    fig11_prints: List[str] = []
    for _ in range(repeats):
        pruner = DistinctPruner(rows=4096, width=2, seed=seed)
        start = time.perf_counter()
        decisions = _run_case_batched(pruner, stream, False, 8192)
        fig11_off.append(time.perf_counter() - start)
        fig11_prints.append(_decision_fingerprint(decisions))
        kernel_obs = Observability(spans=False)
        pruner = DistinctPruner(rows=4096, width=2, seed=seed)
        start = time.perf_counter()
        decisions = []
        for chunk in _chunks(stream, 8192):
            decisions += pruner.offer_batch(chunk)
            kernel_obs.switch_offers.set_total(pruner.stats.offered,
                                               tenant="fig11")
            kernel_obs.switch_prunes.set_total(pruner.stats.pruned,
                                               tenant="fig11")
        fig11_on.append(time.perf_counter() - start)
        fig11_prints.append(_decision_fingerprint(decisions))
    kernel_off = sorted(fig11_off)[len(fig11_off) // 2]
    kernel_on = sorted(fig11_on)[len(fig11_on) // 2]
    kernel_ratio = kernel_on / kernel_off if kernel_off > 0 else None

    decisions_identical = (len(set(off_prints + on_prints)) == 1
                           and len(set(fig11_prints)) == 1)
    exports_identical = (len(set(metric_hashes)) == 1
                         and len(set(span_hashes)) == 1)
    ratios = [r for r in (serving_ratio, kernel_ratio) if r is not None]
    return {
        "benchmark": "obs",
        "tenants": tenants,
        "rows": rows,
        "slots": slots,
        "loss_rate": loss_rate,
        "reorder_window": reorder_window,
        "shards": shards,
        "seed": seed,
        "repeats": repeats,
        "serving": {
            "obs_off_seconds": serving_off,
            "obs_on_seconds": serving_on,
            "overhead_ratio": serving_ratio,
            "walls": {"off": off_walls, "on": on_walls},
            "ticks": report.ticks,
            "served": len(report.served),
            "span_events": len(obs.tracer),
            "metric_names": len(obs.registry.snapshot()),
        },
        "fig11": {
            "rows": fig11_rows,
            "batch_size": 8192,
            "off_seconds": kernel_off,
            "on_seconds": kernel_on,
            "overhead_ratio": kernel_ratio,
            "walls": {"off": fig11_off, "on": fig11_on},
        },
        "decision_domain": {
            "schedule_sha256_off": off_prints,
            "schedule_sha256_on": on_prints,
            "fig11_decisions_sha256": fig11_prints,
            "metrics_export_sha256": metric_hashes,
            "spans_export_sha256": span_hashes,
        },
        "decisions_identical": decisions_identical,
        "exports_identical": exports_identical,
        "overhead_ratio_max": max(ratios) if ratios else None,
        "all_equivalent": report.all_equivalent,
    }


def run_fig5_bench(scale: float = 5e-4, seed: int = 1,
                   shards: int = 1) -> Dict:
    """One timed fig5 completion-time regeneration (smoke-sized in CI).

    Returns the payload for ``BENCH_fig5.json``: wall-clock time plus
    the completion-time rows (which carry the pruning fractions).
    """
    from repro.bench import experiments as ex

    start = time.perf_counter()
    result = ex.fig5_completion(scale=scale, seed=seed, shards=shards)
    wall_seconds = time.perf_counter() - start
    return {
        "benchmark": "fig5_completion",
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "wall_seconds": wall_seconds,
        "rows": result.rows,
    }

#: QoS class names the load bench cycles tenants through.
LOAD_PRIORITY_MIX = ("interactive", "standard", "batch")


def _wall_stats(samples: Sequence[float]) -> Dict:
    """Nearest-rank percentiles of wall-clock latencies (seconds)."""
    import math

    ordered = sorted(samples)

    def pick(fraction: float) -> float:
        rank = max(1, math.ceil(fraction * len(ordered)))
        return ordered[rank - 1]

    return {
        "p50_seconds": pick(0.50),
        "p95_seconds": pick(0.95),
        "p99_seconds": pick(0.99),
        "mean_seconds": sum(ordered) / len(ordered),
        "max_seconds": ordered[-1],
    }


def run_load_bench(clients: int = 256, rows: int = 24, slots: int = 8,
                   loss_rate: float = 0.02, reorder_window: int = 0,
                   shards: int = 1, seed: int = 0,
                   policy: str = "tiers", process: str = "poisson",
                   closed_clients: int = 16,
                   closed_queries: int = 2) -> Dict:
    """Socket load benchmark: a client swarm against a live server.

    Two phases, both over real TCP connections to a
    :class:`~repro.serving.ReproServer`:

    * **Open loop** — ``clients`` concurrent connections, one query
      each, with arrival ticks drawn from the ``process`` generator
      (the same Poisson/burst/diurnal/Pareto machinery the replay
      bench uses) and QoS classes cycling through
      :data:`LOAD_PRIORITY_MIX`.  The server runs in *hold* mode: no
      tick executes until every submission is in, so the admission
      order — and with it the entire tick domain — is a pure function
      of the specs.  ``open_loop.tick_domain`` is therefore
      byte-identical across runs (CI asserts this), while the
      wall-clock latencies around it are genuinely nondeterministic.
    * **Closed loop** — ``closed_clients`` connections each issuing
      ``closed_queries`` queries back-to-back (submit, wait for the
      result, repeat) against a *live* server with no hold barrier.
      This measures the interactive request-response wall latency the
      open phase's batching hides; its tick metrics are reported but
      not deterministic (socket races decide admission order).

    Wall-clock p50/p95/p99 ride next to the tick-based percentiles in
    both phases — the comparison ``docs/RESULTS.md`` renders.
    """
    import asyncio

    return asyncio.run(_load_bench_async(
        clients=clients, rows=rows, slots=slots, loss_rate=loss_rate,
        reorder_window=reorder_window, shards=shards, seed=seed,
        policy=policy, process=process, closed_clients=closed_clients,
        closed_queries=closed_queries))


async def _load_bench_async(*, clients: int, rows: int, slots: int,
                            loss_rate: float, reorder_window: int,
                            shards: int, seed: int, policy: str,
                            process: str, closed_clients: int,
                            closed_queries: int) -> Dict:
    import asyncio

    from repro.api import ServeConfig
    from repro.serving import AsyncReproClient, ReproServer
    from repro.workloads.traces import generate_trace

    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if closed_clients < 0 or closed_queries < 0:
        raise ValueError("closed_clients/closed_queries must be >= 0")
    config = ServeConfig(slots=slots, loss=loss_rate,
                         reorder=reorder_window, shards=shards,
                         seed=seed, policy=policy)

    async def query_one(host, port, spec_kwargs):
        start = time.perf_counter()
        client = await AsyncReproClient.connect(host, port)
        result = await client.run(**spec_kwargs)
        await client.close()
        return time.perf_counter() - start, result

    # -- open loop: one connection per trace query, hold barrier --
    trace = generate_trace(process, queries=clients, rows=rows,
                           seed=seed, priorities=LOAD_PRIORITY_MIX)
    server = ReproServer(config, hold=len(trace.queries))
    await server.start()
    host, port = server.address
    wall_start = time.perf_counter()
    outcomes = await asyncio.gather(*(
        query_one(host, port, dict(
            scenario=q.scenario, tenant=q.tenant, rows=q.rows,
            seed=q.seed, priority=q.priority,
            arrival_tick=q.arrival_tick))
        for q in trace.queries))
    open_wall = time.perf_counter() - wall_start
    await server.stop()
    open_report = server.report()
    open_latencies = [wall for wall, _ in outcomes]
    open_frames = [frame for _, frame in outcomes]

    # -- closed loop: live server, back-to-back request/response --
    closed_latencies: List[float] = []
    closed_frames: List[Dict] = []
    closed_report = None
    if closed_clients and closed_queries:
        server = ReproServer(config)
        await server.start()
        host, port = server.address

        async def closed_one(index: int):
            client = await AsyncReproClient.connect(host, port)
            samples = []
            for turn in range(closed_queries):
                n = index * closed_queries + turn
                start = time.perf_counter()
                frame = await client.run(
                    trace.queries[n % clients].scenario,
                    tenant=f"c{index:03d}-{turn}", rows=rows,
                    seed=seed + n,
                    priority=LOAD_PRIORITY_MIX[n % 3])
                samples.append((time.perf_counter() - start, frame))
            await client.close()
            return samples

        per_client = await asyncio.gather(
            *(closed_one(i) for i in range(closed_clients)))
        await server.stop()
        closed_report = server.report()
        for samples in per_client:
            closed_latencies.extend(wall for wall, _ in samples)
            closed_frames.extend(frame for _, frame in samples)

    def phase_summary(frames, latencies, report, wall=None):
        payload = report.to_payload()
        summary = {
            "queries": len(frames),
            "served": sum(f["status"] == "served" for f in frames),
            "all_equivalent": all(f["equivalent"] is True
                                  for f in frames
                                  if f["status"] == "served"),
            "wall_latency": _wall_stats(latencies),
            "tick_latency": payload["latency"],
        }
        if wall is not None:
            summary["wall_seconds"] = wall
        return summary, payload

    open_summary, open_payload = phase_summary(
        open_frames, open_latencies, open_report, wall=open_wall)
    # The hold barrier makes the open phase's whole tick domain a pure
    # function of the trace — this is the sub-object CI asserts is
    # byte-identical across runs (wall-clock keys live outside it).
    open_summary["tick_domain"] = open_payload
    result = {
        "benchmark": "socket_load",
        "clients": clients,
        "rows": rows,
        "slots": slots,
        "loss_rate": loss_rate,
        "reorder_window": reorder_window,
        "shards": shards,
        "seed": seed,
        "policy": policy,
        "process": process,
        "priority_mix": list(LOAD_PRIORITY_MIX),
        "open_loop": open_summary,
        "all_equivalent": open_summary["all_equivalent"],
    }
    if closed_report is not None:
        closed_summary, _ = phase_summary(
            closed_frames, closed_latencies, closed_report)
        closed_summary["clients"] = closed_clients
        closed_summary["queries_per_client"] = closed_queries
        result["closed_loop"] = closed_summary
        result["all_equivalent"] = (open_summary["all_equivalent"]
                                    and closed_summary["all_equivalent"])
    return result
