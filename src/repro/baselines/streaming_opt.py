"""OPT: the unconstrained streaming pruner (Figs 10/11 upper bound).

OPT is "a hypothetical stream algorithm with no resource constraints"
(§8.3): it remembers everything seen so far and forwards an entry only
when no algorithm could safely prune it at that point of the stream:

* DISTINCT / GROUP BY keys: first occurrences only;
* TOP-N: entries among the N largest *of the prefix so far*;
* GROUP BY MAX: entries strictly improving their group's running max;
* SKYLINE: entries not dominated by any earlier entry;
* JOIN: entries whose key truly occurs in the other table;
* HAVING: one witness per true output key.

Each function returns the **unpruned fraction** for a concrete stream,
which the benches plot under the measured algorithm curves.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Sequence, Set, Tuple


def opt_unpruned_distinct(stream: Sequence) -> float:
    """First occurrences / stream length."""
    if not stream:
        return 0.0
    return len(set(stream)) / len(stream)


def opt_unpruned_topn(stream: Sequence[float], n: int) -> float:
    """Entries that enter the prefix top-N heap at arrival time."""
    if not stream:
        return 0.0
    heap: List[float] = []
    forwarded = 0
    for value in stream:
        if len(heap) < n:
            heapq.heappush(heap, value)
            forwarded += 1
        elif value > heap[0]:
            heapq.heapreplace(heap, value)
            forwarded += 1
    return forwarded / len(stream)


def opt_unpruned_skyline(stream: Sequence[Tuple[float, ...]]) -> float:
    """Entries not dominated by any earlier entry.

    Maintains the running Pareto frontier; an arriving point is forwarded
    iff no frontier point dominates it.
    """
    if not stream:
        return 0.0
    frontier: List[Tuple[float, ...]] = []
    forwarded = 0
    for point in stream:
        dominated = any(
            all(f >= p for f, p in zip(fp, point))
            and any(f > p for f, p in zip(fp, point))
            for fp in frontier
        )
        if dominated:
            continue
        forwarded += 1
        frontier = [
            fp for fp in frontier
            if not (all(p >= f for p, f in zip(point, fp))
                    and any(p > f for p, f in zip(point, fp)))
        ]
        frontier.append(point)
    return forwarded / len(stream)


def opt_unpruned_groupby_max(stream: Sequence[Tuple]) -> float:
    """(key, value) entries strictly improving the group's running max."""
    if not stream:
        return 0.0
    best: Dict = {}
    forwarded = 0
    for key, value in stream:
        if key not in best or value > best[key]:
            best[key] = value
            forwarded += 1
    return forwarded / len(stream)


def opt_unpruned_join(left_keys: Sequence, right_keys: Sequence) -> float:
    """Entries whose key occurs in the other table (exact membership)."""
    total = len(left_keys) + len(right_keys)
    if total == 0:
        return 0.0
    left_set: Set = set(left_keys)
    right_set: Set = set(right_keys)
    forwarded = sum(1 for k in left_keys if k in right_set)
    forwarded += sum(1 for k in right_keys if k in left_set)
    return forwarded / total


def opt_unpruned_having(stream: Sequence[Tuple], threshold: float,
                        aggregate: str = "sum") -> float:
    """One witness per key whose final aggregate exceeds ``threshold``."""
    if not stream:
        return 0.0
    totals: Dict = {}
    for key, value in stream:
        amount = 1 if aggregate == "count" else value
        totals[key] = totals.get(key, 0) + amount
    winners = sum(1 for total in totals.values() if total > threshold)
    return winners / len(stream)


def opt_unpruned_series(kind: str, stream: Sequence,
                        checkpoints: Iterable[int], **params) -> List[float]:
    """OPT unpruned fraction at growing prefixes (Fig. 11's x-axis).

    ``kind`` selects the per-op function; ``params`` are forwarded
    (e.g. ``n=250`` for topn, ``threshold=...`` for having).
    """
    out = []
    for checkpoint in checkpoints:
        prefix = stream[:checkpoint]
        if kind == "distinct":
            out.append(opt_unpruned_distinct(prefix))
        elif kind == "topn":
            out.append(opt_unpruned_topn(prefix, params["n"]))
        elif kind == "skyline":
            out.append(opt_unpruned_skyline(prefix))
        elif kind == "groupby":
            out.append(opt_unpruned_groupby_max(prefix))
        elif kind == "having":
            out.append(opt_unpruned_having(prefix, params["threshold"],
                                           params.get("aggregate", "sum")))
        else:
            raise ValueError(f"no OPT series for kind {kind!r}")
    return out
