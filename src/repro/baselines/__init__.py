"""Comparison baselines.

* :mod:`repro.baselines.netaccel` — the NetAccel lower-bound model the
  paper evaluates against (§8.2.4, Figs 7/12/13): results stored on the
  switch must be drained at the end, and overflow work runs on the weak
  switch CPU.
* :mod:`repro.baselines.streaming_opt` — OPT, the unconstrained
  streaming algorithm that upper-bounds any switch algorithm's pruning
  rate (the OPT lines of Figs 10/11).
"""

from repro.baselines.netaccel import NetAccelModel
from repro.baselines.streaming_opt import (
    opt_unpruned_distinct,
    opt_unpruned_topn,
    opt_unpruned_skyline,
    opt_unpruned_groupby_max,
    opt_unpruned_join,
    opt_unpruned_having,
    opt_unpruned_series,
)

__all__ = [
    "NetAccelModel",
    "opt_unpruned_distinct",
    "opt_unpruned_topn",
    "opt_unpruned_skyline",
    "opt_unpruned_groupby_max",
    "opt_unpruned_join",
    "opt_unpruned_having",
    "opt_unpruned_series",
]
