"""NetAccel lower-bound model (§8.2.4, Appendix F).

NetAccel offloads *entire* queries: results accumulate in switch
registers and must be (a) drained to the master over the slow
dataplane-to-control-plane path when the query completes, and (b)
partially overflowed to the switch CPU when dataplane resources run out.
The paper measures a lower bound — drain time only, assuming unlimited
dataplane resources and Cheetah-equal pruning; Figures 12/13 additionally
compare the switch CPU against a real server for the overflowed share.
"""

from __future__ import annotations

import dataclasses
from typing import Dict


@dataclasses.dataclass
class NetAccelModel:
    """Calibrated NetAccel cost components.

    Parameters
    ----------
    drain_rate:
        Entries/second readable from dataplane registers through the
        switch control plane (PCIe + driver path; ~1M/s reproduces
        Figure 7's slope).
    switch_cpu_rate:
        Per-op service rates of the switch CPU, roughly 10x slower than
        the master server (Figures 12/13).
    server_rate:
        The master-server rates for the same ops (shared with the main
        cost model's master rates).
    """

    drain_rate: float = 1.0e6
    switch_cpu_rate: Dict[str, float] = dataclasses.field(
        default_factory=lambda: {"groupby": 0.1e6, "distinct": 0.2e6}
    )
    server_rate: Dict[str, float] = dataclasses.field(
        default_factory=lambda: {"groupby": 1.0e6, "distinct": 2.0e6}
    )

    def drain_seconds(self, result_entries: int) -> float:
        """Figure 7: time to move the stored result off the switch."""
        if result_entries < 0:
            raise ValueError(f"result_entries must be >= 0, got {result_entries}")
        return result_entries / self.drain_rate

    def completion_lower_bound(self, stream_seconds: float,
                               result_entries: int) -> float:
        """Query completion >= streaming time + final drain; the drain
        cannot be pipelined into the next operation (§8.2.4)."""
        return stream_seconds + self.drain_seconds(result_entries)

    def switch_cpu_seconds(self, op: str, entries: int) -> float:
        """Figures 12/13: processing ``entries`` on the switch CPU."""
        try:
            rate = self.switch_cpu_rate[op]
        except KeyError:
            raise KeyError(f"no switch-CPU rate for op {op!r}") from None
        return entries / rate

    def server_seconds(self, op: str, entries: int) -> float:
        """Figures 12/13: the same work on the master server."""
        try:
            rate = self.server_rate[op]
        except KeyError:
            raise KeyError(f"no server rate for op {op!r}") from None
        return entries / rate

    def cpu_slowdown(self, op: str) -> float:
        """How much slower the switch CPU is for ``op``."""
        return self.server_rate[op] / self.switch_cpu_rate[op]
