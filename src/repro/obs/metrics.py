"""Label-aware metrics registry with tick-domain OpenMetrics export.

A deliberately small subset of the Prometheus client model —
:class:`Counter`, :class:`Gauge`, :class:`Histogram` behind one
:class:`MetricsRegistry` — with one hard rule the real clients do not
have: **everything is deterministic**.  Values are pure functions of
the simulation's tick domain (no wall clocks, no process stats), label
sets render in sorted order, histogram bucket bounds are fixed at
construction, and the exposition writer emits samples in sorted
(name, labels) order — so two identical seeded runs export
byte-identical ``.prom`` files, the same contract every
``results/BENCH_*.json`` obeys.

Timestamps are **ticks**, not epoch milliseconds: the serving stack's
only clock is the event-loop tick (``docs/OBSERVABILITY.md`` §tick
domain), and an exposition stamped with wall time would break the
byte-identity contract for no observability gain.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Sequence, Tuple

logger = logging.getLogger(__name__)

#: Default histogram bounds for tick-domain durations (latency, wait).
#: Powers of two up to ~4k ticks; the exposition adds the +Inf bucket.
DEFAULT_TICK_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                        256.0, 512.0, 1024.0, 2048.0, 4096.0)

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in value)


def _format_value(value) -> str:
    """Deterministic sample rendering: integers without a decimal
    point, floats via ``repr`` (shortest round-trip form)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


class _Metric:
    """Shared labeled-sample machinery of the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()):
        if not name or not name.replace("_", "a").isalnum():
            raise ValueError(f"bad metric name {name!r}")
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        #: label-value tuple -> sample state (a float for counter and
        #: gauge; a [bucket_counts, sum, count] triple for histogram).
        self._samples: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.labelnames)

    def _label_text(self, key: Tuple[str, ...]) -> str:
        if not self.labelnames:
            return ""
        pairs = ",".join(
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.labelnames, key))
        return "{" + pairs + "}"

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        """``(label values, state)`` pairs in sorted label order."""
        return sorted(self._samples.items())


class Counter(_Metric):
    """A monotone cumulative count."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError(
                f"{self.name}: counters only go up, got {amount}")
        key = self._key(labels)
        self._samples[key] = self._samples.get(key, 0) + amount

    def set_total(self, value: float, **labels) -> None:
        """Poller entry point: adopt an externally accumulated total.

        Monotone by construction (``max`` with the current sample), so
        a subsystem whose own counter resets — a channel torn down
        with its pass — can be re-polled safely after the caller folds
        completed-epoch totals into ``value``.
        """
        key = self._key(labels)
        self._samples[key] = max(self._samples.get(key, 0), value)

    def value(self, **labels) -> float:
        return self._samples.get(self._key(labels), 0)


class Gauge(_Metric):
    """An instantaneous value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._samples[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        self._samples[key] = self._samples.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._samples.get(self._key(labels), 0)


class Histogram(_Metric):
    """Cumulative-bucket histogram with fixed deterministic bounds."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_TICK_BUCKETS):
        super().__init__(name, help_text, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"{name}: bucket bounds must be sorted and unique, "
                f"got {buckets}")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        state = self._samples.get(key)
        if state is None:
            state = [[0] * len(self.buckets), 0.0, 0]
            self._samples[key] = state
        counts, _, _ = state
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
        state[1] += value
        state[2] += 1


class MetricsRegistry:
    """Owns every instrument of one run and writes the exposition.

    Instruments are get-or-create: asking twice for the same name
    returns the same object (mismatched kind or labels raise), so
    hook sites do not need to coordinate registration order.
    """

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str,
                       labelnames: Sequence[str], **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if (type(existing) is not cls
                    or existing.labelnames != tuple(labelnames)):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind} with labels {existing.labelnames}")
            return existing
        metric = cls(name, help_text, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_TICK_BUCKETS,
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text,
                                   labelnames, buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    # -- export ----------------------------------------------------------------
    def render_openmetrics(self, tick: Optional[int] = None) -> str:
        """The Prometheus/OpenMetrics text exposition of every metric.

        Metrics render in sorted name order, samples in sorted label
        order; ``tick`` (when given) stamps every sample with the tick
        it was exported at — the run's only clock.  An instrument with
        no samples yet still renders its ``# HELP``/``# TYPE`` header,
        so the metric *catalog* is stable across runs that exercise
        different code paths.
        """
        stamp = "" if tick is None else f" {int(tick)}"
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                self._render_histogram(metric, stamp, lines)
                continue
            for key, value in metric.samples():
                lines.append(f"{name}{metric._label_text(key)} "
                             f"{_format_value(value)}{stamp}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_histogram(metric: Histogram, stamp: str,
                          lines: List[str]) -> None:
        name = metric.name
        for key, state in metric.samples():
            counts, total, count = state
            base = metric._label_text(key)
            joiner = "," if base else ""
            prefix = base[:-1] if base else "{"
            for bound, bucket_count in zip(metric.buckets, counts):
                lines.append(
                    f'{name}_bucket{prefix}{joiner}'
                    f'le="{_format_value(bound)}"}} '
                    f"{bucket_count}{stamp}")
            lines.append(f'{name}_bucket{prefix}{joiner}le="+Inf"}} '
                         f"{count}{stamp}")
            lines.append(f"{name}_sum{base} "
                         f"{_format_value(total)}{stamp}")
            lines.append(f"{name}_count{base} {count}{stamp}")

    def write(self, path: str, tick: Optional[int] = None) -> None:
        """Write the exposition to ``path`` (UTF-8, LF endings)."""
        text = self.render_openmetrics(tick=tick)
        with open(path, "w", encoding="utf-8", newline="\n") as f:
            f.write(text)
        logger.info("wrote %d metrics to %s", len(self._metrics), path)

    # -- wire snapshot (proto/v1 `stats` reply) --------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-safe snapshot: metric name -> type/help/samples.

        Counter and gauge samples are ``{"labels": {...}, "value": v}``;
        histogram samples carry ``buckets`` (cumulative ``[le, count]``
        pairs), ``sum``, and ``count`` instead of ``value``.  Sample
        lists are sorted by label values, so the snapshot is
        deterministic under ``json.dumps(..., sort_keys=True)`` — the
        schema is documented in docs/PROTOCOL.md §4.
        """
        out: Dict[str, Dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            samples = []
            for key, state in metric.samples():
                labels = dict(zip(metric.labelnames, key))
                if isinstance(metric, Histogram):
                    counts, total, count = state
                    samples.append({
                        "labels": labels,
                        "buckets": [[bound, bucket]
                                    for bound, bucket
                                    in zip(metric.buckets, counts)],
                        "sum": total,
                        "count": count,
                    })
                else:
                    samples.append({"labels": labels, "value": state})
            out[name] = {"type": metric.kind, "help": metric.help,
                         "samples": samples}
        return out


__all__ = [
    "DEFAULT_TICK_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
