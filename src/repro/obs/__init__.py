"""Unified observability: tick-domain metrics, spans, and naming.

See docs/OBSERVABILITY.md for the metric/label catalog, the span
taxonomy, and the tick-domain timestamp rationale.  Attach an
:class:`Observability` instance via ``SchedulerConfig(obs=...)``; with
the default ``obs=None`` every hook site is a no-op.
"""

from . import names
from .hooks import Observability
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "SpanTracer",
    "names",
]
