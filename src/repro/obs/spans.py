"""Per-query span tracing with Chrome trace-event export.

Spans mark lifecycle stages of a tenant query — queue wait, DRR
service, preemption windows, wire passes — on one track per tenant,
with tick-domain timestamps.  The exporter writes the Chrome
trace-event JSON format (the ``traceEvents`` array form), so a
``--span-out spans.json`` file loads directly in Perfetto or
``chrome://tracing``.

Determinism contract: events are emitted in simulation order by a
single-writer tick loop, tracks are interned in first-use order, and
the JSON is dumped with sorted keys — two identical seeded runs write
byte-identical span files.

Tick-to-trace mapping: trace-event ``ts``/``dur`` are microseconds by
convention; we write raw ticks into those fields (1 tick == 1 "us" in
the viewer) because ticks are the run's only clock and any wall-clock
scaling would break byte-identity.
"""

from __future__ import annotations

import json
import logging
from typing import Dict, List, Optional, Tuple

logger = logging.getLogger(__name__)

#: Synthetic process id for all tracks — one simulated cluster.
TRACE_PID = 1


class SpanTracer:
    """Collects complete spans, instants, and counter tracks.

    ``record`` appends a finished span directly; ``begin``/``end``
    bracket a span whose end tick is not yet known (keyed by an
    arbitrary hashable, e.g. ``("service", tenant_index)``).  Open
    spans left at ``finalize`` time are closed at the final tick so a
    truncated run still produces a loadable trace.
    """

    def __init__(self):
        self._events: List[Dict] = []
        self._tracks: Dict[str, int] = {}
        self._open: Dict[object, Dict] = {}

    def __len__(self) -> int:
        return len(self._events)

    def _tid(self, track: str) -> int:
        tid = self._tracks.get(track)
        if tid is None:
            tid = len(self._tracks)
            self._tracks[track] = tid
        return tid

    def record(self, name: str, start_tick: int, end_tick: int,
               track: str, cat: str = "scheduler", **args) -> None:
        """Append a complete (``ph: "X"``) span on ``track``."""
        start = int(start_tick)
        self._events.append({
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start,
            "dur": max(0, int(end_tick) - start),
            "pid": TRACE_PID,
            "tid": self._tid(track),
            "args": dict(sorted(args.items())),
        })

    def instant(self, name: str, tick: int, track: str,
                cat: str = "scheduler", **args) -> None:
        """A zero-duration marker (rendered as an arrow-less slice)."""
        self.record(name, tick, tick, track, cat=cat, **args)

    def begin(self, key: object, name: str, start_tick: int,
              track: str, cat: str = "scheduler", **args) -> None:
        """Open a span to be closed later by :meth:`end`."""
        self._open[key] = {
            "name": name,
            "start": int(start_tick),
            "track": track,
            "cat": cat,
            "args": dict(args),
        }

    def end(self, key: object, end_tick: int, **extra) -> bool:
        """Close a span opened by :meth:`begin`; ``extra`` merges into
        its args.  Returns False when ``key`` was never opened."""
        pending = self._open.pop(key, None)
        if pending is None:
            return False
        pending["args"].update(extra)
        self.record(pending["name"], pending["start"], end_tick,
                    pending["track"], cat=pending["cat"],
                    **pending["args"])
        return True

    def counter(self, name: str, tick: int,
                values: Dict[str, float],
                track: str = "counters") -> None:
        """A ``ph: "C"`` counter sample (one stacked track per name)."""
        self._events.append({
            "name": name,
            "cat": "counter",
            "ph": "C",
            "ts": int(tick),
            "pid": TRACE_PID,
            "tid": self._tid(track),
            "args": dict(sorted(values.items())),
        })

    def finalize(self, tick: int) -> None:
        """Close any still-open spans at ``tick``."""
        for key in list(self._open):
            self.end(key, tick, truncated=True)

    # -- export ----------------------------------------------------------------
    def to_chrome_trace(self) -> Dict:
        """The ``{"traceEvents": [...]}`` object Perfetto loads.

        Thread-name metadata events come first so every track is
        labeled, then the recorded events in emission order.
        """
        metadata = [{
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": tid,
            "args": {"name": track},
        } for track, tid in self._tracks.items()]
        metadata.append({
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "cheetah"},
        })
        return {
            "displayTimeUnit": "ms",
            "traceEvents": metadata + list(self._events),
        }

    def write(self, path: str) -> None:
        """Write the trace to ``path`` as compact sorted-key JSON."""
        payload = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8", newline="\n") as f:
            json.dump(payload, f, sort_keys=True,
                      separators=(",", ":"))
            f.write("\n")
        logger.info("wrote %d span events to %s",
                    len(self._events), path)


__all__ = ["SpanTracer", "TRACE_PID"]
