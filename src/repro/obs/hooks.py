"""The :class:`Observability` facade the serving stack hooks into.

One instance bundles a :class:`~repro.obs.metrics.MetricsRegistry` and
(optionally) a :class:`~repro.obs.spans.SpanTracer`, pre-registers the
full metric catalog from :mod:`repro.obs.names`, and exposes the small
set of hook methods :class:`~repro.cluster.scheduler.ServingLoop`
calls.  Attach it via ``SchedulerConfig(obs=...)``; when the field is
``None`` (the default) every hook site is a single ``is not None``
test, so the instrumented loop and the bare loop run the same code.

Two invariants keep the §acceptance gates honest:

* **Read-only hooks.** No hook mutates scheduler, transport, or
  switch state, draws randomness, or reads a wall clock — so obs-on
  decisions are bit-identical to obs-off (CI sha256-compares them)
  and two identical seeded runs export byte-identical files.
* **Per-pass counter folding.** Each wire pass builds a fresh
  :class:`~repro.cluster.simulation.ActiveTransfer` (fresh channels,
  workers, forwarder), so subsystem counters reset per pass.  The
  poller detects the transfer swap by object identity, folds the
  finished pass's totals into a per-tenant base, and publishes
  ``base + live`` through :meth:`Counter.set_total` — cumulative
  counters stay monotone across passes.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional

from . import names
from .metrics import MetricsRegistry
from .spans import SpanTracer

logger = logging.getLogger(__name__)

#: The three lossy channels of one wire pass, in publish order.
_CHANNELS = ("up", "down", "acks")


def _transfer_totals(transfer) -> Dict[str, int]:
    """Cumulative counters of one (possibly live) wire pass."""
    workers = transfer.workers.values()
    controllers = transfer.controllers.values()
    totals = {
        "retransmissions": sum(w.retransmissions for w in workers),
        "timer_scans": sum(w.timer_scans for w in workers),
        "queue_signals": sum(c.queue_signals for c in controllers),
        "loss_events": sum(c.loss_events for c in controllers),
        "switch_offers": transfer.switch.pruned + transfer.switch.forwarded,
        "switch_prunes": transfer.switch.pruned,
        "duplicates": transfer.master.duplicates,
    }
    for channel_name in _CHANNELS:
        channel = getattr(transfer, channel_name)
        totals[f"{channel_name}_sent"] = channel.sent
        totals[f"{channel_name}_dropped"] = channel.dropped
        totals[f"{channel_name}_tail_dropped"] = channel.tail_dropped
    return totals


class Observability:
    """Metrics + spans for one serving run (``SchedulerConfig.obs``).

    ``spans=False`` keeps only the metrics registry — span bookkeeping
    (one event per pass and per lifecycle transition, plus two counter
    samples per tick) is the more voluminous half.
    """

    def __init__(self, metrics: bool = True, spans: bool = False):
        if not metrics:
            raise ValueError("the metrics registry is not optional; "
                             "disable observability by passing obs=None")
        self.registry = MetricsRegistry()
        self.tracer: Optional[SpanTracer] = SpanTracer() if spans else None
        #: tenant index -> per-run polling state (see module docstring).
        self._state: Dict[int, Dict] = {}
        self._finalized = False
        self._register()

    def _register(self) -> None:
        """Pre-register the full catalog (docs/OBSERVABILITY.md), so
        the exported metric *names* are identical for every run — a
        scenario that never preempts still exports the preemption
        counter's HELP/TYPE header."""
        r = self.registry
        self.sched_tick = r.gauge(
            names.SCHED_TICK, "Serving-loop tick at export time.")
        self.sched_occupancy = r.gauge(
            names.SCHED_OCCUPANCY, "Slots held by admitted tenants.")
        self.sched_queue_depth = r.gauge(
            names.SCHED_QUEUE_DEPTH, "Tenants queued for admission.")
        self.sched_suspended = r.gauge(
            names.SCHED_SUSPENDED, "Tenants preempted and suspended.")
        self.sched_active = r.gauge(
            names.SCHED_ACTIVE, "Tenants in service.")
        self.sched_admissions = r.counter(
            names.SCHED_ADMISSIONS, "Tenants admitted.", ("qos_class",))
        self.sched_completions = r.counter(
            names.SCHED_COMPLETIONS, "Tenants served to completion.",
            ("qos_class",))
        self.sched_rejections = r.counter(
            names.SCHED_REJECTIONS, "Tenants rejected at admission.",
            ("qos_class",))
        self.sched_preemptions = r.counter(
            names.SCHED_PREEMPTIONS, "Tenants preempted (suspended).",
            ("qos_class",))
        self.sched_resumes = r.counter(
            names.SCHED_RESUMES, "Suspended tenants resumed.",
            ("qos_class",))
        self.sched_service = r.counter(
            names.SCHED_SERVICE,
            "DRR service steps (tenant-ticks advanced).", ("qos_class",))
        self.query_latency = r.histogram(
            names.QUERY_LATENCY,
            "Arrival-to-completion latency in ticks.", ("qos_class",))
        self.query_wait = r.histogram(
            names.QUERY_WAIT,
            "Arrival-to-admission wait in ticks.", ("qos_class",))
        self.transport_retransmissions = r.counter(
            names.TRANSPORT_RETRANSMISSIONS,
            "Worker retransmissions (timeout-driven resends).",
            ("tenant",))
        self.transport_timer_scans = r.counter(
            names.TRANSPORT_TIMER_SCANS,
            "Retransmission-timer scans.", ("tenant",))
        self.transport_queue_signals = r.counter(
            names.TRANSPORT_QUEUE_SIGNALS,
            "AIMD multiplicative decreases (queue feedback).",
            ("tenant",))
        self.transport_loss_events = r.counter(
            names.TRANSPORT_LOSS_EVENTS,
            "AIMD loss events (timeout feedback).", ("tenant",))
        self.transport_rate = r.gauge(
            names.TRANSPORT_RATE,
            "AIMD send rate per flow (packets/tick).",
            ("tenant", "fid"))
        self.transport_rate_peak = r.gauge(
            names.TRANSPORT_RATE_PEAK,
            "Peak AIMD send rate per flow (packets/tick).",
            ("tenant", "fid"))
        self.channel_depth = r.gauge(
            names.CHANNEL_DEPTH, "In-flight packets queued per channel.",
            ("tenant", "channel"))
        self.channel_sent = r.counter(
            names.CHANNEL_SENT, "Packets accepted per channel.",
            ("tenant", "channel"))
        self.channel_drops = r.counter(
            names.CHANNEL_DROPS, "Packets lost per channel.",
            ("tenant", "channel"))
        self.channel_tail_drops = r.counter(
            names.CHANNEL_TAIL_DROPS,
            "Packets tail-dropped by finite ingress queues.",
            ("tenant", "channel"))
        self.switch_offers = r.counter(
            names.SWITCH_OFFERS,
            "Entries offered to the switch stage.", ("tenant",))
        self.switch_prunes = r.counter(
            names.SWITCH_PRUNES,
            "Entries pruned (switch-ACKed) in the data plane.",
            ("tenant",))
        self.switch_shard_offered = r.gauge(
            names.SWITCH_SHARD_OFFERED,
            "Entries offered per physical shard.", ("shard",))
        self.switch_shard_pruned = r.gauge(
            names.SWITCH_SHARD_PRUNED,
            "Entries pruned per physical shard.", ("shard",))
        self.switch_installed = r.gauge(
            names.SWITCH_INSTALLED,
            "Queries installed on the shared data plane.")
        self.switch_live_shards = r.gauge(
            names.SWITCH_LIVE_SHARDS,
            "Physical pipelines currently serving.")
        self.chaos_events = r.counter(
            names.CHAOS_EVENTS, "Chaos events applied.", ("event",))
        self.chaos_migrations = r.counter(
            names.CHAOS_MIGRATIONS,
            "Queries migrated off killed shards.")
        self.chaos_restored = r.counter(
            names.CHAOS_RESTORED,
            "Refugee queries restored to restarted shards.")
        self.chaos_replayed = r.counter(
            names.CHAOS_REPLAYED_PACKETS,
            "Unacked window packets replayed after worker kills.")
        self.chaos_recovery = r.counter(
            names.CHAOS_RECOVERY_TICKS,
            "Ticks spent in worker-kill recovery.")

    # -- lifecycle hooks (called by ServingLoop) -------------------------------
    def on_admit(self, run, tick: int) -> None:
        cls = run.qos_class.name
        self.sched_admissions.inc(qos_class=cls)
        wait = tick - run.spec.arrival_tick
        self.query_wait.observe(wait, qos_class=cls)
        if self.tracer is None:
            return
        tenant = run.spec.tenant
        if wait > 0:
            self.tracer.record(
                names.SPAN_QUEUE, run.spec.arrival_tick, tick,
                track=tenant, cat=names.CAT_SCHEDULER,
                tenant=tenant, qos_class=cls)
        self.tracer.begin(
            ("service", run.index), names.SPAN_SERVICE, tick,
            track=tenant, cat=names.CAT_SCHEDULER, tenant=tenant,
            qos_class=cls, slots=run.spec.slots,
            scenario=run.spec.scenario)

    def on_complete(self, run, tick: int) -> None:
        cls = run.qos_class.name
        self.sched_completions.inc(qos_class=cls)
        self.query_latency.observe(tick - run.spec.arrival_tick,
                                   qos_class=cls)
        state = self._state.get(run.index)
        if state is not None and state["transfer"] is not None:
            self._fold(state, tick)
        if self.tracer is not None:
            self.tracer.end(("service", run.index), tick,
                            passes=len(run.passes))

    def on_reject(self, run, tick: int) -> None:
        self.sched_rejections.inc(qos_class=run.qos_class.name)
        if self.tracer is not None:
            self.tracer.instant(
                names.SPAN_REJECT, tick, track=run.spec.tenant,
                cat=names.CAT_SCHEDULER, tenant=run.spec.tenant,
                qos_class=run.qos_class.name, reason=run.reason)

    def on_preempt(self, victim, tick: int, by=None) -> None:
        self.sched_preemptions.inc(qos_class=victim.qos_class.name)
        if self.tracer is not None:
            self.tracer.begin(
                ("suspend", victim.index), names.SPAN_SUSPEND, tick,
                track=victim.spec.tenant, cat=names.CAT_SCHEDULER,
                tenant=victim.spec.tenant,
                preempted_by="" if by is None else by.spec.tenant)

    def on_resume(self, run, tick: int) -> None:
        self.sched_resumes.inc(qos_class=run.qos_class.name)
        if self.tracer is not None:
            self.tracer.end(("suspend", run.index), tick)

    def on_chaos(self, records: List[Dict], tick: int,
                 controller) -> None:
        for record in records:
            event = str(record.get("event", "unknown"))
            self.chaos_events.inc(event=event)
            logger.info("chaos event %s at tick %d", event, tick)
            if self.tracer is not None:
                args = {}
                for key, value in sorted(record.items()):
                    if key in ("name", "tick", "track", "cat"):
                        key = f"event_{key}"  # instant() params
                    if isinstance(value, (bool, int, float, str)):
                        args[key] = value
                    elif isinstance(value, (list, tuple, dict, set)):
                        args[key] = len(value)
                self.tracer.instant(event, tick, track="chaos",
                                    cat=names.CAT_CHAOS, **args)
        self._poll_chaos(controller)

    def _poll_chaos(self, controller) -> None:
        self.chaos_migrations.set_total(controller.migrations)
        self.chaos_restored.set_total(controller.restored)
        self.chaos_replayed.set_total(controller.replayed_packets)
        self.chaos_recovery.set_total(controller.recovery_ticks)

    def on_service_tick(self, loop, tick: int, stepped) -> None:
        """End-of-tick poll: loop gauges, per-tenant transport and
        channel counters, data-plane shard stats."""
        occupancy = sum(run.spec.slots for run in loop.active)
        self.sched_tick.set(tick)
        self.sched_occupancy.set(occupancy)
        self.sched_queue_depth.set(len(loop.waiting))
        self.sched_suspended.set(len(loop.suspended))
        self.sched_active.set(len(loop.active))
        for run in stepped:
            self.sched_service.inc(qos_class=run.qos_class.name)
        for run in loop.active:
            self._poll_run(run, tick)
        self._poll_frontend(loop.frontend)
        if self.tracer is not None:
            self.tracer.counter(names.COUNTER_OCCUPANCY, tick,
                                {"slots": occupancy})
            self.tracer.counter(names.COUNTER_QUEUE_DEPTH, tick,
                                {"tenants": len(loop.waiting)})

    # -- per-run polling -------------------------------------------------------
    def _poll_run(self, run, tick: int) -> None:
        state = self._state.get(run.index)
        if state is None:
            state = {"run": run, "transfer": None, "base": {},
                     "pass_start": tick, "pass_no": 0}
            self._state[run.index] = state
        transfer = run.current
        if transfer is not state["transfer"]:
            if state["transfer"] is not None:
                self._fold(state, tick)
            state["transfer"] = transfer
            state["pass_start"] = tick
            state["pass_no"] += 1
        if transfer is None:
            return
        base = state["base"]
        live = _transfer_totals(transfer)
        self._publish(run.spec.tenant, base, live, transfer)

    def _publish(self, tenant: str, base: Dict[str, int],
                 live: Dict[str, int], transfer) -> None:
        """Publish ``base + live`` counter totals and the live channel
        depth / rate gauges for one tenant."""

        def total(key: str) -> int:
            return base.get(key, 0) + live.get(key, 0)

        self.transport_retransmissions.set_total(
            total("retransmissions"), tenant=tenant)
        self.transport_timer_scans.set_total(
            total("timer_scans"), tenant=tenant)
        self.transport_queue_signals.set_total(
            total("queue_signals"), tenant=tenant)
        self.transport_loss_events.set_total(
            total("loss_events"), tenant=tenant)
        self.switch_offers.set_total(total("switch_offers"),
                                     tenant=tenant)
        self.switch_prunes.set_total(total("switch_prunes"),
                                     tenant=tenant)
        for channel_name in _CHANNELS:
            self.channel_sent.set_total(
                total(f"{channel_name}_sent"),
                tenant=tenant, channel=channel_name)
            self.channel_drops.set_total(
                total(f"{channel_name}_dropped"),
                tenant=tenant, channel=channel_name)
            self.channel_tail_drops.set_total(
                total(f"{channel_name}_tail_dropped"),
                tenant=tenant, channel=channel_name)
            self.channel_depth.set(
                getattr(transfer, channel_name).pending(),
                tenant=tenant, channel=channel_name)
        for fid in sorted(transfer.controllers):
            controller = transfer.controllers[fid]
            self.transport_rate.set(controller.rate,
                                    tenant=tenant, fid=fid)
            self.transport_rate_peak.set(controller.peak_rate,
                                         tenant=tenant, fid=fid)

    def _fold(self, state: Dict, tick: int) -> None:
        """Fold a finished pass's counters into the tenant base,
        re-publish the now-exact totals (the pass's last tick happened
        after the last end-of-tick poll), and (with spans on) record
        its ``pass:`` span."""
        transfer = state["transfer"]
        totals = _transfer_totals(transfer)
        base = state["base"]
        for key, value in totals.items():
            base[key] = base.get(key, 0) + value
        self._publish(state["run"].spec.tenant, base, {}, transfer)
        state["transfer"] = None
        if self.tracer is None:
            return
        run = state["run"]
        request = transfer.request
        self.tracer.record(
            names.SPAN_PASS_PREFIX + request.name,
            state["pass_start"], tick,
            track=run.spec.tenant, cat=names.CAT_TRANSPORT,
            tenant=run.spec.tenant, pass_no=state["pass_no"],
            fids=len(transfer.workers),
            entries=sum(len(s) for s in request.streams.values()),
            ticks=transfer.ticks,
            retransmissions=totals["retransmissions"],
            tail_drops=sum(totals[f"{c}_tail_dropped"]
                           for c in _CHANNELS),
            drops=sum(totals[f"{c}_dropped"] for c in _CHANNELS),
            pruned=totals["switch_prunes"],
            offered=totals["switch_offers"],
            duplicates=totals["duplicates"])

    def _poll_frontend(self, frontend) -> None:
        self.switch_installed.set(len(frontend.installed_queries()))
        per_shard_stats = getattr(frontend, "per_shard_stats", None)
        if per_shard_stats is None:
            self.switch_live_shards.set(1)
            return
        for shard, stats in enumerate(per_shard_stats()):
            self.switch_shard_offered.set(stats.offered, shard=shard)
            self.switch_shard_pruned.set(stats.pruned, shard=shard)
        self.switch_live_shards.set(len(frontend.live_shards))

    # -- end of run ------------------------------------------------------------
    def finalize(self, loop) -> None:
        """Fold still-open passes, stamp the final tick, close open
        spans.  Idempotent — the socket server and the synchronous
        ``QueryScheduler.serve`` may both reach it."""
        if self._finalized:
            return
        tick = loop.tick
        for state in self._state.values():
            if state["transfer"] is not None:
                self._fold(state, tick)
        self.sched_tick.set(tick)
        if loop.chaos is not None:
            self._poll_chaos(loop.chaos)
        if self.tracer is not None:
            self.tracer.finalize(tick)
        self._finalized = True
        logger.debug("observability finalized at tick %d", tick)

    # -- post-hoc ingestion (solo `repro run` / e2e path) ----------------------
    def ingest_simulation_report(self, report, track: str = "run") -> None:
        """Populate metrics and pass spans from a finished solo
        :class:`~repro.cluster.simulation.SimulationReport`.

        The solo ``ClusterSimulation`` drives each pass to completion
        internally (no shared tick loop to hook), so ``repro run``
        exports are reconstructed from the per-pass accounting; pass
        spans lay out back-to-back on the summed tick axis, and
        channel counters (aggregated across the three channels in
        :class:`PassStats`) use the ``all`` channel label.
        """
        cursor = 0
        for index, stats in enumerate(report.passes):
            start = cursor
            cursor += stats.ticks
            self.transport_retransmissions.inc(stats.retransmissions,
                                               tenant=track)
            self.switch_offers.inc(
                stats.switch_pruned + stats.switch_forwarded,
                tenant=track)
            self.switch_prunes.inc(stats.switch_pruned, tenant=track)
            self.channel_sent.inc(stats.packets_sent,
                                  tenant=track, channel="all")
            self.channel_drops.inc(stats.packets_dropped,
                                   tenant=track, channel="all")
            if self.tracer is not None:
                self.tracer.record(
                    names.SPAN_PASS_PREFIX + stats.name, start, cursor,
                    track=track, cat=names.CAT_TRANSPORT,
                    tenant=track, pass_no=index + 1,
                    entries=stats.entries, delivered=stats.delivered,
                    ticks=stats.ticks,
                    retransmissions=stats.retransmissions,
                    pruned=stats.switch_pruned,
                    duplicates=stats.master_duplicates,
                    drops=stats.packets_dropped)
        self.sched_tick.set(cursor)
        if self.tracer is not None:
            self.tracer.finalize(cursor)

    # -- exports ---------------------------------------------------------------
    def write_metrics(self, path: str,
                      tick: Optional[int] = None) -> None:
        self.registry.write(path, tick=tick)

    def write_spans(self, path: str) -> None:
        if self.tracer is None:
            logger.warning(
                "span output %s requested but span tracing is off", path)
            return
        self.tracer.write(path)


__all__ = ["Observability"]
