"""One naming convention for every observability surface.

Metric names, span names, and the hot-path profile's kernel keys all
come from this module, so a counter in a ``.prom`` export, a span in a
Perfetto trace, and a row in ``results/PROFILE_hotpath.json`` spell
the same thing the same way.  The convention (documented in
``docs/OBSERVABILITY.md``):

* **metrics** — ``cheetah_<subsystem>_<object>_<unit>``; cumulative
  counters end in ``_total``, histograms in their unit (``_ticks``);
* **spans** — short lifecycle-stage nouns (``queue``, ``service``,
  ``pass``, ``suspend``), categorized by subsystem;
* **kernel keys** — the function actually profiled
  (``encode_packet``, ``offer_batch``), not an abbreviation of it.

The profile payload historically used abbreviated keys (``encode``,
``offer``); :data:`LEGACY_KERNEL_KEYS` maps them to the canonical
spelling so renderers keep working against checked-in artifacts.
"""

from __future__ import annotations

# -- subsystems (metric name prefixes, span categories) ------------------------
PREFIX = "cheetah"

SUBSYSTEM_SCHEDULER = "scheduler"
SUBSYSTEM_TRANSPORT = "transport"
SUBSYSTEM_CHANNEL = "channel"
SUBSYSTEM_SWITCH = "switch"
SUBSYSTEM_CHAOS = "chaos"
SUBSYSTEM_QUERY = "query"

# -- scheduler / serving loop --------------------------------------------------
SCHED_TICK = "cheetah_scheduler_tick"
SCHED_OCCUPANCY = "cheetah_scheduler_occupancy_slots"
SCHED_QUEUE_DEPTH = "cheetah_scheduler_queue_depth_tenants"
SCHED_SUSPENDED = "cheetah_scheduler_suspended_tenants"
SCHED_ACTIVE = "cheetah_scheduler_active_tenants"
SCHED_ADMISSIONS = "cheetah_scheduler_admissions_total"
SCHED_COMPLETIONS = "cheetah_scheduler_completions_total"
SCHED_REJECTIONS = "cheetah_scheduler_rejections_total"
SCHED_PREEMPTIONS = "cheetah_scheduler_preemptions_total"
SCHED_RESUMES = "cheetah_scheduler_resumes_total"
SCHED_SERVICE = "cheetah_scheduler_drr_service_total"

# -- per-query outcome histograms (tick domain) --------------------------------
QUERY_LATENCY = "cheetah_query_latency_ticks"
QUERY_WAIT = "cheetah_query_wait_ticks"

# -- reliability transport (ReliableWorker / RateController) -------------------
TRANSPORT_RETRANSMISSIONS = "cheetah_transport_retransmissions_total"
TRANSPORT_TIMER_SCANS = "cheetah_transport_timer_scans_total"
TRANSPORT_RATE = "cheetah_transport_rate_packets_per_tick"
TRANSPORT_RATE_PEAK = "cheetah_transport_rate_peak_packets_per_tick"
TRANSPORT_QUEUE_SIGNALS = "cheetah_transport_queue_signals_total"
TRANSPORT_LOSS_EVENTS = "cheetah_transport_loss_events_total"

# -- lossy channels ------------------------------------------------------------
CHANNEL_DEPTH = "cheetah_channel_depth_packets"
CHANNEL_SENT = "cheetah_channel_sent_total"
CHANNEL_DROPS = "cheetah_channel_drops_total"
CHANNEL_TAIL_DROPS = "cheetah_channel_tail_drops_total"

# -- switch dataplane (ControlPlane / ShardedSwitchFrontend) -------------------
SWITCH_OFFERS = "cheetah_switch_offers_total"
SWITCH_PRUNES = "cheetah_switch_prunes_total"
SWITCH_SHARD_OFFERED = "cheetah_switch_shard_offered_entries"
SWITCH_SHARD_PRUNED = "cheetah_switch_shard_pruned_entries"
SWITCH_INSTALLED = "cheetah_switch_installed_queries"
SWITCH_LIVE_SHARDS = "cheetah_switch_live_shards"

# -- chaos engine --------------------------------------------------------------
CHAOS_EVENTS = "cheetah_chaos_events_total"
CHAOS_MIGRATIONS = "cheetah_chaos_migrations_total"
CHAOS_RESTORED = "cheetah_chaos_restored_total"
CHAOS_REPLAYED_PACKETS = "cheetah_chaos_replayed_packets_total"
CHAOS_RECOVERY_TICKS = "cheetah_chaos_recovery_ticks_total"

# -- span taxonomy (docs/OBSERVABILITY.md) -------------------------------------
SPAN_QUEUE = "queue"
SPAN_SERVICE = "service"
SPAN_SUSPEND = "suspend"
SPAN_REJECT = "reject"
#: Pass spans are named after the wire pass itself (the scenario's
#: ``TransferRequest.name``); this prefix marks derived span names.
SPAN_PASS_PREFIX = "pass:"

CAT_SCHEDULER = SUBSYSTEM_SCHEDULER
CAT_TRANSPORT = SUBSYSTEM_TRANSPORT
CAT_CHAOS = SUBSYSTEM_CHAOS

#: Counter-event names (Chrome trace ``ph: "C"`` tracks).
COUNTER_OCCUPANCY = SCHED_OCCUPANCY
COUNTER_QUEUE_DEPTH = SCHED_QUEUE_DEPTH

# -- hot-path profile kernel keys (results/PROFILE_hotpath.json) ---------------
KERNEL_ENCODE = "encode_packet"
KERNEL_DECODE_HEADER = "decode_header"
KERNEL_DECODE_VALUES = "decode_values"
KERNEL_OFFER = "offer_batch"

#: Canonical key order of the codec-pipeline kernel entries.
PROFILE_KERNEL_KEYS = (KERNEL_ENCODE, KERNEL_DECODE_HEADER,
                       KERNEL_DECODE_VALUES, KERNEL_OFFER)

#: Pre-PR-10 profile payloads abbreviated two kernel keys; renderers
#: accept both spellings so checked-in artifacts keep rendering.
LEGACY_KERNEL_KEYS = {
    "encode": KERNEL_ENCODE,
    "offer": KERNEL_OFFER,
}


def canonical_kernel_key(key: str) -> str:
    """The canonical spelling of a (possibly legacy) kernel key."""
    return LEGACY_KERNEL_KEYS.get(key, key)


__all__ = [name for name in dir() if name.isupper()] + [
    "canonical_kernel_key",
]
