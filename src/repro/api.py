"""The stable, versioned public API of the reproduction.

Everything else in the package is implementation detail that may move
between PRs; the names exported here — and the ``proto/v1`` wire
protocol (``docs/PROTOCOL.md``) — are the two surfaces with a
compatibility promise.  Both the in-process path and the socket
server speak in these terms:

* :class:`ServeConfig` — plain-typed serving knobs (``policy`` is a
  string spec, not a ``QosPolicy`` object), convertible to the
  internal :class:`~repro.cluster.scheduler.SchedulerConfig`.  The
  CLI, :class:`Session`, and :class:`~repro.serving.ReproServer` all
  accept it.
* :class:`Session` — in-process serving: submit scenarios, drive the
  deterministic tick loop, collect :class:`QueryResult`\\ s.  It wraps
  the same :class:`~repro.cluster.scheduler.ServingLoop` the socket
  server's reactor owns, with the same monotone arrival stamping —
  so an in-process session and a socket session submitting the same
  scenarios produce the same tick domain.
* :func:`submit` — the one-shot convenience (one scenario, one
  result).
* :class:`QueryResult` — the per-tenant outcome, constructible from
  an in-process :class:`~repro.cluster.scheduler.TenantReport` or a
  ``proto/v1`` ``result`` frame, so callers handle both transports
  with one type.
* :func:`run_scenario` — a single-tenant end-to-end run through the
  simulated cluster (the ``repro run <scenario> --loss`` path),
  without constructing :class:`ClusterSimulation` drivers directly
  (deprecated — see ``repro.cluster.__getattr__``).
* :func:`connect` / :func:`connect_async` — socket clients to a
  running ``repro serve --listen``.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Optional

from repro.cluster.qos import parse_policy
from repro.cluster.scheduler import (
    ScheduleReport,
    SchedulerConfig,
    ServingLoop,
    TenantReport,
    TenantSpec,
)

#: The facade's own version, independent of the package version:
#: bumped only when a name exported here changes incompatibly.
API_VERSION = 1


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Serving knobs, in the CLI's vocabulary.

    Field names deliberately match the shared CLI flags
    (``--loss/--shards/--slots/--policy/--seed``; see the flag matrix
    in README.md), and ``policy`` is a string spec accepted by
    :func:`~repro.cluster.qos.parse_policy` (``fifo``, ``tiers``,
    ``tiers-no-preempt``, or a custom class spec) — the facade never
    asks callers to build internal policy objects.  ``congestion``
    (``"fixed"`` or ``"aimd"``) and ``queue_capacity`` select the
    transport mode, mirroring ``--congestion``/``--queue-capacity``
    (``docs/CONGESTION.md``).
    """

    slots: int = 4
    loss: float = 0.0
    shards: int = 1
    policy: str = "fifo"
    seed: int = 0
    workers: int = 4
    reorder: int = 0
    queue_when_full: bool = True
    congestion: str = "fixed"
    queue_capacity: Optional[int] = None

    def scheduler_config(self) -> SchedulerConfig:
        """The internal :class:`SchedulerConfig` this resolves to."""
        return SchedulerConfig(
            slots=self.slots,
            queue_when_full=self.queue_when_full,
            policy=parse_policy(self.policy),
            workers=self.workers,
            loss_rate=self.loss,
            reorder_window=self.reorder,
            shards=self.shards,
            seed=self.seed,
            congestion=self.congestion,
            queue_capacity=self.queue_capacity,
        )


@dataclasses.dataclass(frozen=True)
class QueryResult:
    """One tenant's outcome, transport-independent.

    ``output`` is the actual result object on the in-process path and
    ``None`` over the socket (JSON cannot round-trip the executor's
    tuples and integer keys); ``output_repr`` is populated on both
    paths, and ``equivalent`` records the server-side comparison
    against the functional ``QueryPlan.run`` reference either way.
    """

    tenant: str
    scenario: str
    status: str
    reason: str
    qos_class: str
    equivalent: Optional[bool]
    arrival_tick: int
    admitted_tick: Optional[int]
    completed_tick: Optional[int]
    wait_ticks: Optional[int]
    service_ticks: Optional[int]
    latency_ticks: Optional[int]
    preemptions: int
    suspended_ticks: int
    entries: int
    delivered: int
    output: Optional[Any] = None
    output_repr: Optional[str] = None

    @property
    def served(self) -> bool:
        return self.status == "served"

    @classmethod
    def from_report(cls, report: TenantReport) -> "QueryResult":
        """Build from an in-process :class:`TenantReport`."""
        output = (report.result.output if report.result is not None
                  else None)
        return cls(
            tenant=report.spec.tenant,
            scenario=report.spec.scenario,
            status=report.status,
            reason=report.reason,
            qos_class=report.qos_class,
            equivalent=report.equivalent,
            arrival_tick=report.spec.arrival_tick,
            admitted_tick=report.admitted_tick,
            completed_tick=report.completed_tick,
            wait_ticks=report.wait_ticks,
            service_ticks=report.service_ticks,
            latency_ticks=report.latency_ticks,
            preemptions=report.preemptions,
            suspended_ticks=report.suspended_ticks,
            entries=report.entries,
            delivered=report.delivered,
            output=output,
            output_repr=repr(output) if output is not None else None,
        )

    @classmethod
    def from_frame(cls, frame: Dict) -> "QueryResult":
        """Build from a ``proto/v1`` ``result`` frame."""
        return cls(
            tenant=frame["tenant"],
            scenario=frame.get("scenario", ""),
            status=frame["status"],
            reason=frame.get("reason", ""),
            qos_class=frame.get("qos_class", ""),
            equivalent=frame.get("equivalent"),
            arrival_tick=frame.get("arrival_tick", 0),
            admitted_tick=frame.get("admitted_tick"),
            completed_tick=frame.get("completed_tick"),
            wait_ticks=frame.get("wait_ticks"),
            service_ticks=frame.get("service_ticks"),
            latency_ticks=frame.get("latency_ticks"),
            preemptions=frame.get("preemptions", 0),
            suspended_ticks=frame.get("suspended_ticks", 0),
            entries=frame.get("entries", 0),
            delivered=frame.get("delivered", 0),
            output=None,
            output_repr=frame.get("output_repr"),
        )


class Session:
    """An in-process serving session with a stable surface.

    >>> session = Session(ServeConfig(slots=2))
    >>> name = session.submit("topn", rows=40)
    >>> results = session.run()
    >>> results[0].served and results[0].equivalent
    True

    Submissions after :meth:`run` are fine — the underlying
    :class:`ServingLoop` is resumable, and arrival stamps stay
    monotone exactly like the socket server's, so an interleaved
    submit/run session still records a replayable trace.
    """

    def __init__(self, config: Optional[ServeConfig] = None, *,
                 check: bool = True):
        self.config = config if config is not None else ServeConfig()
        self._core = ServingLoop(self.config.scheduler_config())
        self._check = check
        self._results: List[QueryResult] = []
        self._last_stamp = 0
        self._auto = 0
        self._wall = 0.0
        #: Submitted specs with final stamps, in submission order.
        self.submitted_specs: List[TenantSpec] = []

    def submit(self, scenario: str, *, tenant: Optional[str] = None,
               rows: int = 240, seed: int = 0,
               priority: Optional[str] = None, slots: int = 1,
               arrival_tick: Optional[int] = None) -> str:
        """Queue one tenant; returns its (possibly generated) name.

        ``arrival_tick=None`` means "now": the next tick whose
        admission phase has not run yet.  An explicit earlier tick is
        clamped forward — stamps are monotone in submission order, the
        invariant that keeps recorded sessions replay-identical.
        """
        if tenant is None:
            tenant = f"q{self._auto}"
            self._auto += 1
        stamp = max(arrival_tick if arrival_tick is not None else 0,
                    self._core.arrival_floor, self._last_stamp)
        spec = TenantSpec(tenant=tenant, scenario=scenario, rows=rows,
                          seed=seed, arrival_tick=stamp,
                          priority=priority, slots=slots)
        self._core.submit(spec)
        self._last_stamp = stamp
        self.submitted_specs.append(spec)
        return tenant

    def run(self) -> List[QueryResult]:
        """Drive the loop until idle; returns the *newly* finished
        results (in completion order)."""
        fresh: List[QueryResult] = []
        start = time.perf_counter()
        while self._core.has_work:
            for done in self._core.run_tick():
                if self._check:
                    done.evaluate()
                fresh.append(QueryResult.from_report(done.report()))
        self._wall += time.perf_counter() - start
        self._results.extend(fresh)
        return fresh

    def results(self) -> List[QueryResult]:
        """Every result collected so far (completion order)."""
        return list(self._results)

    def result(self, tenant: str) -> QueryResult:
        """A finished tenant's result (runs the loop if needed)."""
        for res in self._results:
            if res.tenant == tenant:
                return res
        self.run()
        for res in self._results:
            if res.tenant == tenant:
                return res
        raise KeyError(f"no result for tenant {tenant!r}")

    def report(self) -> ScheduleReport:
        """The session's full :class:`ScheduleReport` (same payload
        contract as ``repro serve``/``replay``)."""
        return self._core.report(check=self._check,
                                 wall_seconds=self._wall)

    def write_trace(self, path: str) -> None:
        """Record the session as a replayable v2 arrival trace."""
        from repro.workloads.traces import trace_from_specs

        trace = trace_from_specs(self.submitted_specs,
                                 seed=self.config.seed,
                                 loss_rate=self.config.loss,
                                 shards=self.config.shards)
        trace.save(path)


def submit(scenario: str, *, config: Optional[ServeConfig] = None,
           **kwargs) -> QueryResult:
    """One-shot serving: run a single scenario, return its result."""
    session = Session(config)
    name = session.submit(scenario, **kwargs)
    session.run()
    return session.result(name)


def run_scenario(name: str, *, rows: int = 1200, seed: int = 0,
                 workers: int = 4, loss: float = 0.05,
                 reorder: int = 0, shards: int = 1,
                 pipelined: bool = True, check: bool = True,
                 congestion: str = "fixed",
                 queue_capacity: Optional[int] = None,
                 parallel_shards: bool = False):
    """One scenario end-to-end through the simulated cluster.

    This is the facade over single-tenant
    :class:`~repro.cluster.simulation.ClusterSimulation` runs (the
    ``repro run <scenario> --loss`` path); returns its
    :class:`~repro.cluster.simulation.SimulationReport`.
    ``congestion``/``queue_capacity`` select the transport mode
    (``docs/CONGESTION.md``); results are byte-identical either way,
    only the protocol accounting moves.  ``parallel_shards`` executes
    the K shard pruners on a process pool
    (``docs/PERFORMANCE.md``) — again bit-identical results.
    """
    from repro.cluster.simulation import (
        ClusterSimulation,
        SimulationConfig,
        build_scenario,
    )

    query, tables = build_scenario(name, rows=rows, seed=seed)
    config = SimulationConfig(workers=workers, loss_rate=loss,
                              reorder_window=reorder, shards=shards,
                              seed=seed, pipelined=pipelined,
                              congestion=congestion,
                              queue_capacity=queue_capacity,
                              parallel_shards=parallel_shards)
    return ClusterSimulation(config).run(query, tables, check=check)


def connect(host: str, port: int, client: str = "repro-client"):
    """A blocking :class:`~repro.serving.ReproClient` to a running
    ``repro serve --listen`` server."""
    from repro.serving import ReproClient

    return ReproClient(host, port, client=client)


async def connect_async(host: str, port: int,
                        client: str = "repro-client"):
    """An :class:`~repro.serving.AsyncReproClient` (coroutine path)."""
    from repro.serving import AsyncReproClient

    return await AsyncReproClient.connect(host, port, client=client)


__all__ = [
    "API_VERSION",
    "ServeConfig",
    "Session",
    "QueryResult",
    "submit",
    "run_scenario",
    "connect",
    "connect_async",
]
