"""The d x w cache matrix — Cheetah's central in-switch data structure.

Several pruners share the same physical layout: a matrix of ``d`` rows by
``w`` columns of 64-bit registers, one column per pipeline stage.  A packet
touches exactly one row (hash-partitioned or uniformly random, depending on
the query) and compares against the ``w`` entries in that row, one per
stage.  Row policies differ per query:

* DISTINCT uses LRU (rolling replacement) or FIFO eviction and asks
  "was this value seen?" — no false positives by construction.
* Randomized TOP-N keeps a rolling **minimum** per row: the row holds the
  ``w`` largest values mapped to it, sorted descending across stages.
* GROUP BY keys each row slot by group hash and keeps per-group aggregates.

This module implements the matrix with both membership and rolling-min
semantics; pruners wrap it with their query logic.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.sketches.hashing import (
    HashableValue,
    hash64,
    row_of,
    rows_of_batch,
    sequence_rows_batch,
)


class EvictionPolicy(enum.Enum):
    """Row replacement policy for membership caches (Fig. 10a compares
    LRU against FIFO; LRU prunes slightly more)."""

    LRU = "lru"
    FIFO = "fifo"


class CacheMatrix:
    """Membership cache: ``d`` rows, each an ordered list of <= ``w`` values.

    ``contains_or_insert`` is the single-pass operation the switch performs:
    it reports whether the value was already cached in its row and, if not,
    inserts it (evicting per policy).  On a hit under LRU the value is moved
    to the front, emulating the paper's rolling-replacement registers.

    Guarantees: a **hit implies the value truly appeared before** (no false
    positives), which makes DISTINCT pruning sound.  Misses on previously
    seen values (false negatives, due to eviction) merely reduce pruning.
    """

    def __init__(self, rows: int, width: int,
                 policy: EvictionPolicy = EvictionPolicy.LRU,
                 seed: int = 0):
        if rows < 1:
            raise ValueError(f"rows must be positive, got {rows}")
        if width < 1:
            raise ValueError(f"width must be positive, got {width}")
        self.rows = rows
        self.width = width
        self.policy = policy
        self.seed = seed
        self._data: List[List[HashableValue]] = [[] for _ in range(rows)]
        self.hits = 0
        self.misses = 0

    def row_index(self, value: HashableValue) -> int:
        """Hash-partition ``value`` to its row (stable across packets)."""
        return row_of(value, self.rows, self.seed)

    def contains_or_insert(self, value: HashableValue) -> bool:
        """Return True iff ``value`` was cached; insert it otherwise.

        This mirrors the switch datapath: one row selected by hash, up to
        ``w`` register comparisons, and a rolling replacement on miss.
        """
        row = self._data[self.row_index(value)]
        if value in row:
            self.hits += 1
            if self.policy is EvictionPolicy.LRU:
                row.remove(value)
                row.insert(0, value)
            return True
        self.misses += 1
        row.insert(0, value)
        if len(row) > self.width:
            row.pop()
        return False

    def contains_or_insert_batch(self, values) -> List[bool]:
        """Batched :meth:`contains_or_insert` — identical decisions.

        Row selection is hashed for the whole batch at once (falling back
        to per-value hashing for non-int keys) and the membership loop
        runs with locals hoisted; per-value semantics, stats, and stored
        state match the scalar path exactly.
        """
        rows_idx = rows_of_batch(values, self.rows, self.seed)
        if rows_idx is None:
            row_index = self.row_index
            rows_idx = [row_index(v) for v in values]
        data = self._data
        width = self.width
        lru = self.policy is EvictionPolicy.LRU
        hits = misses = 0
        out: List[bool] = []
        append = out.append
        for value, index in zip(values, rows_idx):
            row = data[index]
            if value in row:
                hits += 1
                if lru:
                    row.remove(value)
                    row.insert(0, value)
                append(True)
            else:
                misses += 1
                row.insert(0, value)
                if len(row) > width:
                    row.pop()
                append(False)
        self.hits += hits
        self.misses += misses
        return out

    def __contains__(self, value: HashableValue) -> bool:
        """Pure membership test (no insertion, no stat update)."""
        return value in self._data[self.row_index(value)]

    def occupancy(self) -> int:
        """Total cached values across all rows."""
        return sum(len(row) for row in self._data)

    def memory_words(self) -> int:
        """64-bit register words provisioned (d*w, per Table 2)."""
        return self.rows * self.width

    def clear(self) -> None:
        """Wipe all rows."""
        self._data = [[] for _ in range(self.rows)]
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CacheMatrix(d={self.rows}, w={self.width}, "
            f"policy={self.policy.value}, occupancy={self.occupancy()})"
        )


class RollingMinMatrix:
    """Rolling-minimum matrix for randomized TOP-N (Example #7, Fig. 2).

    Each row stores the ``w`` largest values routed to it, kept sorted
    descending; an arriving value is inserted by a chain of per-stage
    compare-and-swap operations (the "rolling minimum"), and the value
    falling off the end is the one the next stage considers.  A value
    smaller than everything in its row is **prunable**.

    Rows are selected *uniformly at random* per entry (not by value hash):
    TOP-N cares about ranks, not identity, and random placement is what the
    balls-and-bins analysis (Theorem 2) assumes.  We derive the row from a
    hash of the entry's sequence number so runs are reproducible.
    """

    def __init__(self, rows: int, width: int, seed: int = 0):
        if rows < 1:
            raise ValueError(f"rows must be positive, got {rows}")
        if width < 1:
            raise ValueError(f"width must be positive, got {width}")
        self.rows = rows
        self.width = width
        self.seed = seed
        self._data: List[List[float]] = [[] for _ in range(rows)]
        self._arrivals = 0

    def row_for_arrival(self, sequence: Optional[int] = None) -> int:
        """Pick the (pseudo)random row for the next arrival."""
        if sequence is None:
            sequence = self._arrivals
        return hash64((self.seed, sequence), 0x70F1) % self.rows

    def offer(self, value: float, sequence: Optional[int] = None) -> bool:
        """Process one arrival; return True iff the entry is prunable
        (strictly smaller than all ``w`` stored values in its full row)."""
        row_idx = self.row_for_arrival(sequence)
        self._arrivals += 1
        row = self._data[row_idx]
        if len(row) < self.width:
            self._insert_sorted(row, value)
            return False
        if value <= row[-1]:
            # Smaller than (or equal to) the row minimum: every stored value
            # is >= it, so at least w larger-or-equal values exist -> prune.
            # Equal values are pruned too: the stored duplicates suffice.
            return value < row[-1] or self._count_ge(row, value) >= self.width
        row.pop()
        self._insert_sorted(row, value)
        return False

    def offer_batch(self, values) -> List[bool]:
        """Batched :meth:`offer` over consecutive arrivals.

        The per-arrival row sequence is hashed for the whole batch at
        once; the rolling-minimum updates run in arrival order, so the
        decisions and the stored matrix state are bit-identical to
        calling :meth:`offer` per value.
        """
        count = len(values)
        rows_idx = sequence_rows_batch(self.seed, self._arrivals, count,
                                       self.rows)
        if rows_idx is None:
            row_for_arrival = self.row_for_arrival
            rows_idx = [row_for_arrival(self._arrivals + i)
                        for i in range(count)]
        self._arrivals += count
        data = self._data
        width = self.width
        insert_sorted = self._insert_sorted
        count_ge = self._count_ge
        out: List[bool] = []
        append = out.append
        for value, index in zip(values, rows_idx):
            row = data[index]
            if len(row) < width:
                insert_sorted(row, value)
                append(False)
                continue
            last = row[-1]
            if value <= last:
                append(value < last or count_ge(row, value) >= width)
                continue
            row.pop()
            insert_sorted(row, value)
            append(False)
        return out

    @staticmethod
    def _insert_sorted(row: List[float], value: float) -> None:
        import bisect

        # Keep descending order: insert by negated key.
        lo, hi = 0, len(row)
        while lo < hi:
            mid = (lo + hi) // 2
            if row[mid] >= value:
                lo = mid + 1
            else:
                hi = mid
        row.insert(lo, value)

    @staticmethod
    def _count_ge(row: List[float], value: float) -> int:
        return sum(1 for v in row if v >= value)

    def row_contents(self, row_idx: int) -> List[float]:
        """Stored values of a row, largest first (test hook)."""
        return list(self._data[row_idx])

    def memory_words(self) -> int:
        """Provisioned 64-bit words (d*w, per Table 2)."""
        return self.rows * self.width

    def clear(self) -> None:
        """Wipe all rows and the arrival counter."""
        self._data = [[] for _ in range(self.rows)]
        self._arrivals = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"RollingMinMatrix(d={self.rows}, w={self.width})"
