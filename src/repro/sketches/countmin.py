"""Count-Min sketch — the HAVING pruner's aggregate store (Example #5).

The paper picks Count-Min over Count sketch because it is switch-friendly
(per-row: one hash, one register increment, one min) and its error is
**one-sided**: the estimate ``g(x)`` always satisfies ``g(x) >= f(x)``.
For ``HAVING f(x) > c`` the switch prunes only when ``g(x) <= c``, so a
key whose true aggregate exceeds ``c`` can never be pruned — estimation
error only costs pruning rate, never correctness.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.sketches.hashing import HashFamily, HashableValue


class CountMinSketch:
    """Count-Min sketch with ``depth`` rows of ``width`` counters.

    Parameters
    ----------
    width:
        Counters per row (``w`` in Figure 10f; powers of two on switches).
    depth:
        Number of rows (paper uses 3 for HAVING).
    seed:
        Base hash seed.
    conservative:
        Enable conservative update (increment only the minimal counters).
        Tofino can express it with a read-compare-write ALU program; it
        tightens estimates and is exposed for the ablation bench.
    """

    def __init__(self, width: int, depth: int = 3, seed: int = 0,
                 conservative: bool = False):
        if width < 1:
            raise ValueError(f"width must be positive, got {width}")
        if depth < 1:
            raise ValueError(f"depth must be positive, got {depth}")
        self.width = width
        self.depth = depth
        self.seed = seed
        self.conservative = conservative
        self._family = HashFamily(depth, width, seed)
        self._rows = [[0] * width for _ in range(depth)]
        self._total = 0

    def update(self, key: HashableValue, amount: int = 1) -> None:
        """Add ``amount`` to ``key``'s aggregate (SUM uses the value,
        COUNT uses 1)."""
        if amount < 0:
            raise ValueError(
                "Count-Min one-sided error requires non-negative updates; "
                f"got {amount} (the paper defers SUM/COUNT < c to future work)"
            )
        self._total += amount
        idxs = self._family.all(key)
        if self.conservative:
            current = self.estimate(key)
            target = current + amount
            for row, idx in zip(self._rows, idxs):
                if row[idx] < target:
                    row[idx] = target
        else:
            for row, idx in zip(self._rows, idxs):
                row[idx] += amount

    def estimate(self, key: HashableValue) -> int:
        """One-sided estimate: ``estimate(key) >= true_aggregate(key)``."""
        return min(
            row[idx] for row, idx in zip(self._rows, self._family.all(key))
        )

    def update_and_estimate(self, key: HashableValue, amount: int = 1) -> int:
        """Single-pass update-then-read, as the switch pipeline does it."""
        self.update(key, amount)
        return self.estimate(key)

    def update_and_estimate_batch(self, keys, amounts) -> List[int]:
        """Batched :meth:`update_and_estimate` with sequential semantics.

        Counter indices are hashed for the whole batch at once; the
        updates themselves run in entry order (each estimate reflects all
        earlier updates in the batch), so the returned estimates and the
        final counter state are identical to per-entry calls.
        """
        index_arrays = (None if self.conservative
                        else self._family.all_batch(keys))
        if index_arrays is None:
            return [self.update_and_estimate(key, amount)
                    for key, amount in zip(keys, amounts)]
        index_columns = [arr.astype("int64").tolist()
                         for arr in index_arrays]
        rows = self._rows
        depth = range(self.depth)
        out: List[int] = []
        append = out.append
        for j, amount in enumerate(amounts):
            if amount < 0:
                raise ValueError(
                    "Count-Min one-sided error requires non-negative "
                    f"updates; got {amount} (the paper defers SUM/COUNT "
                    "< c to future work)"
                )
            self._total += amount
            estimate = None
            for i in depth:
                row = rows[i]
                index = index_columns[i][j]
                row[index] += amount
                value = row[index]
                if estimate is None or value < estimate:
                    estimate = value
            append(estimate)
        return out

    @property
    def total(self) -> int:
        """Sum of all updates (L1 mass)."""
        return self._total

    def error_bound(self, delta_rows: float = None) -> float:
        """Classic CM guarantee: error <= e/width * total with prob
        ``1 - e^-depth`` per query."""
        import math

        return math.e / self.width * self._total

    def memory_counters(self) -> int:
        """Total counters (width x depth), for resource accounting."""
        return self.width * self.depth

    def clear(self) -> None:
        """Reset all counters."""
        for row in self._rows:
            for i in range(len(row)):
                row[i] = 0
        self._total = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CountMinSketch(width={self.width}, depth={self.depth}, "
            f"total={self._total}, conservative={self.conservative})"
        )


def bulk_load(pairs: Iterable[Tuple[HashableValue, int]], width: int,
              depth: int = 3, seed: int = 0) -> CountMinSketch:
    """Build a sketch from ``(key, amount)`` pairs (test/bench helper)."""
    sketch = CountMinSketch(width, depth, seed)
    for key, amount in pairs:
        sketch.update(key, amount)
    return sketch
