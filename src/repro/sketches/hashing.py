"""Seeded 64-bit hash functions.

Tofino pipelines expose CRC-based hash units; any well-mixed seeded hash
family reproduces their statistical behaviour.  We implement a
splitmix64-style finalizer over a seed-perturbed input, which is fast,
dependency-free, and passes the avalanche requirements the analysis in the
paper assumes (uniform row selection, uniform fingerprints).

Everything in this module is deterministic given ``(value, seed)`` so that
experiments are exactly reproducible.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

_MASK64 = (1 << 64) - 1

HashableValue = Union[int, str, bytes, float, tuple]


def _to_int(value: HashableValue) -> int:
    """Map a supported value to a canonical non-negative integer."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value & _MASK64 if value >= 0 else (value + (1 << 64)) & _MASK64
    if isinstance(value, float):
        # Hash the IEEE-754 bit pattern so 1.0 and 1 differ deliberately:
        # column types are fixed per query, so this never mixes in practice.
        import struct

        return int.from_bytes(struct.pack("<d", value), "little")
    if isinstance(value, str):
        value = value.encode("utf-8")
    if isinstance(value, bytes):
        acc = 0xCBF29CE484222325  # FNV-1a offset basis
        for byte in value:
            acc ^= byte
            acc = (acc * 0x100000001B3) & _MASK64
        return acc
    if isinstance(value, tuple):
        acc = 0x9E3779B97F4A7C15
        for item in value:
            acc = (acc * 0xFF51AFD7ED558CCD + _to_int(item)) & _MASK64
        return acc
    raise TypeError(f"unhashable value type for switch hashing: {type(value)!r}")


def _splitmix64(x: int) -> int:
    """The splitmix64 finalizer; a strong 64-bit mixing permutation."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def hash64(value: HashableValue, seed: int = 0) -> int:
    """Return a uniform 64-bit hash of ``value`` under ``seed``.

    Distinct seeds give (empirically) independent functions, which is what
    the Bloom filter / Count-Min analyses require.
    """
    return _splitmix64(_to_int(value) ^ _splitmix64(seed))


def fingerprint_bits(value: HashableValue, bits: int, seed: int = 0x5EED) -> int:
    """Return a ``bits``-wide fingerprint of ``value``.

    Used by wide/multi-column DISTINCT queries (Example #8) where the raw
    key exceeds the number of bits the switch can parse.  Collisions are
    possible and analysed in Theorems 5-7.
    """
    if not 1 <= bits <= 64:
        raise ValueError(f"fingerprint width must be in [1, 64], got {bits}")
    return hash64(value, seed) >> (64 - bits)


class HashFamily:
    """A family of ``k`` seeded hash functions with a common output range.

    Parameters
    ----------
    k:
        Number of functions in the family (e.g. Bloom filter hash count).
    range_size:
        Outputs are uniform over ``[0, range_size)``.
    seed:
        Base seed; function ``i`` uses ``seed + i`` mixed through splitmix.
    """

    def __init__(self, k: int, range_size: int, seed: int = 0):
        if k < 1:
            raise ValueError(f"hash family needs k >= 1, got {k}")
        if range_size < 1:
            raise ValueError(f"range_size must be positive, got {range_size}")
        self.k = k
        self.range_size = range_size
        self.seed = seed
        self._seeds = [_splitmix64(seed + i * 0x9E3779B9) for i in range(k)]

    def __call__(self, value: HashableValue, i: int) -> int:
        """Value of the ``i``-th function on ``value``."""
        return hash64(value, self._seeds[i]) % self.range_size

    def all(self, value: HashableValue) -> Sequence[int]:
        """All ``k`` hash values for ``value`` (Bloom insert/query path)."""
        return [hash64(value, s) % self.range_size for s in self._seeds]

    def all_batch(self, values):
        """Per-function index arrays for a whole batch of values.

        Returns a list of ``k`` uint64 arrays (one per hash function,
        each of ``len(values)`` indices), bit-identical to calling
        :meth:`all` per value — or ``None`` when the batch cannot be
        vectorized (the caller falls back to the scalar path).
        """
        arr = _as_u64_array(values)
        if arr is None:
            return None
        return [hash64_batch(arr, s) % _np.uint64(self.range_size)
                for s in self._seeds]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashFamily(k={self.k}, range={self.range_size}, seed={self.seed})"


def row_of(value: HashableValue, rows: int, seed: int = 0xD15C) -> int:
    """Deterministic row index in ``[0, rows)`` used by hash-partitioned
    matrices (DISTINCT / GROUP BY) — the same key always lands in the same
    row, which their correctness argument requires."""
    if rows < 1:
        raise ValueError(f"rows must be positive, got {rows}")
    return hash64(value, seed) % rows


def stable_shuffle(items: Iterable, seed: int) -> list:
    """Deterministically shuffle ``items`` (used to build the random-order
    streams the analysis assumes, without consuming global RNG state)."""
    keyed = sorted(enumerate(items), key=lambda p: hash64((seed, p[0])))
    return [item for _, item in keyed]


# ---------------------------------------------------------------------------
# Vectorized (batch) hashing
#
# The batched dataplane amortizes Python dispatch by hashing whole entry
# batches at once.  Every function below is bit-identical to its scalar
# counterpart and returns ``None`` when vectorization is unavailable
# (numpy missing, or values outside the plain-int fast path) so callers
# can fall back to the scalar loop.
# ---------------------------------------------------------------------------

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


def _as_u64_array(values):
    """Plain-int ``values`` as a uint64 array matching ``_to_int``.

    Returns ``None`` when any element is not exactly ``int`` (bool is
    rejected on purpose: it routes through the scalar path unchanged) or
    when the values do not fit the 64-bit conversions.
    """
    if _np is None:
        return None
    for value in values:
        if type(value) is not int:
            return None
    try:
        return _np.asarray(values, dtype=_np.uint64)
    except (OverflowError, ValueError, TypeError):
        pass
    try:
        # Negative ints: the int64 -> uint64 cast is the same two's
        # complement mapping _to_int applies.
        return _np.asarray(values, dtype=_np.int64).astype(_np.uint64)
    except (OverflowError, ValueError, TypeError):
        return None


def _splitmix64_array(x):
    """:func:`_splitmix64` over a uint64 array (unsigned wraparound)."""
    x = x + _np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> _np.uint64(30))) * _np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _np.uint64(27))) * _np.uint64(0x94D049BB133111EB)
    return x ^ (x >> _np.uint64(31))


def hash64_batch(values, seed: int = 0):
    """Vectorized :func:`hash64` over plain-int values.

    Returns a uint64 array, or ``None`` when the batch cannot be
    vectorized (caller falls back to per-value :func:`hash64`).
    """
    if _np is not None and isinstance(values, _np.ndarray) \
            and values.dtype == _np.uint64:
        arr = values
    else:
        arr = _as_u64_array(values)
    if arr is None:
        return None
    return _splitmix64_array(arr ^ _np.uint64(_splitmix64(seed)))


def rows_of_batch(values, rows: int, seed: int = 0xD15C):
    """Vectorized :func:`row_of`: a list of row indices, or ``None``."""
    hashed = hash64_batch(values, seed)
    if hashed is None:
        return None
    return (hashed % _np.uint64(rows)).tolist()


def fingerprint_bits_batch(values, bits: int, seed: int = 0x5EED):
    """Vectorized :func:`fingerprint_bits`, or ``None``."""
    if not 1 <= bits <= 64:
        raise ValueError(f"fingerprint width must be in [1, 64], got {bits}")
    hashed = hash64_batch(values, seed)
    if hashed is None:
        return None
    return (hashed >> _np.uint64(64 - bits)).tolist()


def sequence_rows_batch(seed, start: int, count: int, rows: int,
                        salt: int = 0x70F1):
    """Rows for arrival sequence numbers ``start .. start+count-1``.

    Bit-identical to ``hash64((seed, sequence), salt) % rows`` per
    arrival — the randomized TOP-N row-selection path.  ``None`` when
    numpy is unavailable.
    """
    if _np is None:
        return None
    mult = 0xFF51AFD7ED558CCD
    acc = (0x9E3779B97F4A7C15 * mult + _to_int(seed)) & _MASK64
    seqs = _np.arange(start, start + count, dtype=_np.uint64)
    mixed = _np.uint64((acc * mult) & _MASK64) + seqs
    hashed = _splitmix64_array(mixed ^ _np.uint64(_splitmix64(salt)))
    return (hashed % _np.uint64(rows)).tolist()
