"""Bloom filters as used by the JOIN pruner (Example #4).

Two variants, matching Table 2's JOIN rows:

* :class:`BloomFilter` ("BF"): a classic M-bit filter with H hash
  functions.  On Tofino this occupies ``H`` stages (one register access per
  stage) when same-stage ALUs cannot share memory, or 2 stages in the
  paper's accounting where they can.
* :class:`RegisterBloomFilter` ("RBF"): a single-stage variant that packs
  the filter into 64-bit register words and sets/tests one bit per word
  per access using ``64 / H``-way word indexing; it trades a slightly
  different false-positive profile for a single pipeline stage.

Both guarantee **no false negatives**, which is what makes JOIN pruning
sound: a pruned key is guaranteed absent from the other table.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

from repro.sketches.hashing import HashFamily, HashableValue, hash64

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


class BloomFilter:
    """Classic Bloom filter over ``size_bits`` bits with ``hashes`` functions.

    Parameters
    ----------
    size_bits:
        Filter size M in bits.
    hashes:
        Number of hash functions H (paper default: 3).
    seed:
        Seed for the hash family (vary across experiment repetitions).
    """

    def __init__(self, size_bits: int, hashes: int = 3, seed: int = 0):
        if size_bits < 8:
            raise ValueError(f"Bloom filter needs >= 8 bits, got {size_bits}")
        if hashes < 1:
            raise ValueError(f"need >= 1 hash function, got {hashes}")
        self.size_bits = size_bits
        self.hashes = hashes
        self.seed = seed
        self._family = HashFamily(hashes, size_bits, seed)
        self._words = bytearray((size_bits + 7) // 8)
        self._inserted = 0

    def add(self, value: HashableValue) -> None:
        """Insert ``value`` into the filter."""
        for idx in self._family.all(value):
            self._words[idx >> 3] |= 1 << (idx & 7)
        self._inserted += 1

    def __contains__(self, value: HashableValue) -> bool:
        return all(
            self._words[idx >> 3] & (1 << (idx & 7))
            for idx in self._family.all(value)
        )

    def update(self, values: Iterable[HashableValue]) -> None:
        """Insert every value in ``values``."""
        for value in values:
            self.add(value)

    def add_batch(self, values) -> None:
        """Vectorized :meth:`add` for a whole batch of keys.

        Hashes the batch at once and sets bits via a bulk scatter-or;
        final filter state is identical to per-value ``add`` calls.
        """
        index_arrays = self._family.all_batch(values)
        if index_arrays is None:
            for value in values:
                self.add(value)
            return
        view = _np.frombuffer(self._words, dtype=_np.uint8)
        for idxs in index_arrays:
            byte_idx = (idxs >> _np.uint64(3)).astype(_np.int64)
            bit = (_np.uint64(1) << (idxs & _np.uint64(7))).astype(_np.uint8)
            _np.bitwise_or.at(view, byte_idx, bit)
        self._inserted += len(values)

    def contains_batch(self, values) -> List[bool]:
        """Vectorized membership test, identical to ``value in filter``."""
        index_arrays = self._family.all_batch(values)
        if index_arrays is None:
            return [value in self for value in values]
        view = _np.frombuffer(self._words, dtype=_np.uint8)
        result = _np.ones(len(values), dtype=bool)
        for idxs in index_arrays:
            byte_idx = (idxs >> _np.uint64(3)).astype(_np.int64)
            shift = (idxs & _np.uint64(7)).astype(_np.uint8)
            result &= ((view[byte_idx] >> shift) & 1).astype(bool)
        return result.tolist()

    @property
    def inserted(self) -> int:
        """Number of ``add`` calls (not distinct keys)."""
        return self._inserted

    def fill_ratio(self) -> float:
        """Fraction of set bits; drives the false-positive rate."""
        set_bits = sum(bin(b).count("1") for b in self._words)
        return set_bits / self.size_bits

    def false_positive_rate(self) -> float:
        """Current theoretical FP rate ``(fill_ratio)^H``."""
        return self.fill_ratio() ** self.hashes

    @staticmethod
    def expected_fp_rate(size_bits: int, hashes: int, items: int) -> float:
        """Closed-form expected FP rate after inserting ``items`` keys."""
        if items == 0:
            return 0.0
        fill = 1.0 - math.exp(-hashes * items / size_bits)
        return fill**hashes

    @staticmethod
    def optimal_hashes(size_bits: int, items: int) -> int:
        """FP-optimal hash count ``(M/n) ln 2`` (>= 1)."""
        if items == 0:
            return 1
        return max(1, round(size_bits / items * math.log(2)))

    def clear(self) -> None:
        """Reset to empty (control-plane register wipe)."""
        for i in range(len(self._words)):
            self._words[i] = 0
        self._inserted = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"BloomFilter(bits={self.size_bits}, H={self.hashes}, "
            f"inserted={self._inserted})"
        )


class RegisterBloomFilter:
    """Single-stage "register Bloom filter" (Table 2's RBF row).

    The filter is organised as an array of 64-bit register words.  An
    element hashes once to a word and derives its ``hashes`` bit positions
    inside that word from further hash bits, so one register access per
    packet suffices — the property that lets the RBF fit in a single
    pipeline stage.  Clustering the bits in one word raises the
    false-positive rate slightly versus a classic BF of equal size, which
    is the BF/RBF gap visible in Figure 10e.
    """

    WORD_BITS = 64

    def __init__(self, size_bits: int, hashes: int = 3, seed: int = 0):
        if size_bits < self.WORD_BITS:
            raise ValueError(
                f"RBF needs >= {self.WORD_BITS} bits, got {size_bits}"
            )
        if not 1 <= hashes <= self.WORD_BITS:
            raise ValueError(f"hashes must be in [1, 64], got {hashes}")
        self.size_bits = size_bits
        self.hashes = hashes
        self.seed = seed
        self.num_words = size_bits // self.WORD_BITS
        self._words = [0] * self.num_words
        self._inserted = 0

    def _positions(self, value: HashableValue) -> tuple:
        h = hash64(value, self.seed)
        word = h % self.num_words
        mask = 0
        rest = h // self.num_words
        for i in range(self.hashes):
            if rest < self.WORD_BITS:
                rest = hash64((value, i), self.seed ^ 0xB10F)
            mask |= 1 << (rest % self.WORD_BITS)
            rest //= self.WORD_BITS
        return word, mask

    def add(self, value: HashableValue) -> None:
        """Insert ``value`` (single register read-modify-write)."""
        word, mask = self._positions(value)
        self._words[word] |= mask
        self._inserted += 1

    def __contains__(self, value: HashableValue) -> bool:
        word, mask = self._positions(value)
        return (self._words[word] & mask) == mask

    def update(self, values: Iterable[HashableValue]) -> None:
        """Insert every value in ``values``."""
        for value in values:
            self.add(value)

    def add_batch(self, values) -> None:
        """Batched :meth:`add` (the RBF's data-dependent in-word rehash
        keeps position derivation scalar; the loop is hoisted)."""
        words = self._words
        positions = self._positions
        for value in values:
            word, mask = positions(value)
            words[word] |= mask
        self._inserted += len(values)

    def contains_batch(self, values) -> List[bool]:
        """Batched membership test."""
        words = self._words
        positions = self._positions
        out = []
        for value in values:
            word, mask = positions(value)
            out.append((words[word] & mask) == mask)
        return out

    @property
    def inserted(self) -> int:
        """Number of ``add`` calls."""
        return self._inserted

    def fill_ratio(self) -> float:
        """Fraction of set bits across all words."""
        set_bits = sum(bin(w).count("1") for w in self._words)
        return set_bits / (self.num_words * self.WORD_BITS)

    def clear(self) -> None:
        """Reset to empty."""
        self._words = [0] * self.num_words
        self._inserted = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"RegisterBloomFilter(bits={self.size_bits}, H={self.hashes}, "
            f"inserted={self._inserted})"
        )


def sized_for_fp_rate(items: int, fp_rate: float, hashes: Optional[int] = None,
                      seed: int = 0) -> BloomFilter:
    """Build a :class:`BloomFilter` sized for ``items`` keys at ``fp_rate``.

    Used by the asymmetric JOIN optimization: the small table gets a filter
    with a much lower false-positive rate, improving pruning of the large
    table (§4.3).
    """
    if items < 1:
        raise ValueError(f"items must be positive, got {items}")
    if not 0.0 < fp_rate < 1.0:
        raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
    size_bits = max(8, math.ceil(-items * math.log(fp_rate) / (math.log(2) ** 2)))
    if hashes is None:
        hashes = BloomFilter.optimal_hashes(size_bits, items)
    return BloomFilter(size_bits, hashes, seed)
