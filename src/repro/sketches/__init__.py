"""Probabilistic data-structure substrate used by the Cheetah pruners.

The paper's switch algorithms are built from a small set of stateful
primitives that a PISA pipeline can express:

* seeded 64-bit hash functions (:mod:`repro.sketches.hashing`),
* Bloom filters and register Bloom filters (:mod:`repro.sketches.bloom`),
* Count-Min sketches with one-sided error (:mod:`repro.sketches.countmin`),
* the d x w cache matrix with LRU / FIFO / rolling-minimum row policies
  (:mod:`repro.sketches.cache_matrix`), and
* fingerprint sizing per Theorems 5-7 (:mod:`repro.sketches.fingerprint`).

These classes are plain Python (no switch semantics); the switch simulator
in :mod:`repro.switch` enforces that the pruners only use them in ways a
real pipeline could.
"""

from repro.sketches.hashing import HashFamily, hash64, fingerprint_bits
from repro.sketches.bloom import BloomFilter, RegisterBloomFilter
from repro.sketches.countmin import CountMinSketch
from repro.sketches.cache_matrix import (
    CacheMatrix,
    EvictionPolicy,
    RollingMinMatrix,
)
from repro.sketches.fingerprint import (
    fingerprint_length_simple,
    fingerprint_length_distinct,
    max_row_load_bound,
)

__all__ = [
    "HashFamily",
    "hash64",
    "fingerprint_bits",
    "BloomFilter",
    "RegisterBloomFilter",
    "CountMinSketch",
    "CacheMatrix",
    "EvictionPolicy",
    "RollingMinMatrix",
    "fingerprint_length_simple",
    "fingerprint_length_distinct",
    "max_row_load_bound",
]
