"""Fingerprint sizing — Theorems 5-7 of the paper, as code.

Wide or multi-column DISTINCT keys are replaced by short hashes
("fingerprints") computed at the CWorker.  A fingerprint collision is only
harmful when the colliding keys also share a cache-matrix **row**, which is
what lets the paper shave ~log2(d) bits off the naive bound.

This module provides the closed-form fingerprint lengths:

* :func:`fingerprint_length_simple` — Theorem 5: ``ceil(log2(w * m / delta))``
  bits suffice for an ``m``-entry stream.
* :func:`max_row_load_bound` — the quantity ``M`` of Theorems 6/7 bounding
  the max number of distinct keys per row.
* :func:`fingerprint_length_distinct` — Theorems 6/7:
  ``ceil(log2(d * M^2 / delta))`` bits suffice regardless of stream length.
"""

from __future__ import annotations

import math


def fingerprint_length_simple(stream_length: int, width: int,
                              delta: float) -> int:
    """Theorem 5 fingerprint length (bits) for an ``m``-entry stream.

    With ``f = ceil(log2(w * m / delta))`` bits, the probability of any
    same-row fingerprint collision over the whole stream is at most
    ``delta``.
    """
    _validate(stream_length, delta)
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    return max(1, math.ceil(math.log2(width * stream_length / delta)))


def max_row_load_bound(distinct: int, rows: int, delta: float) -> float:
    """The max-per-row distinct-count bound ``M`` from Theorems 6/7.

    Three regimes over the distinct count ``D`` relative to ``d ln(2d/delta)``:

    * heavy load (``D > d ln(2d/delta)``): ``M = e * D / d``;
    * medium load: ``M = e * ln(2d/delta)``;
    * light load: ``M = 1.3 ln(2d/delta) / ln((d / (D e)) * ln(2d/delta))``.
    """
    _validate(distinct, delta)
    if rows < 1:
        raise ValueError(f"rows must be positive, got {rows}")
    d, big_d = rows, distinct
    threshold_heavy = d * math.log(2 * d / delta)
    threshold_light = d * math.log(1 / delta) / math.e
    if big_d > threshold_heavy:
        return math.e * big_d / d
    if big_d >= threshold_light:
        return math.e * math.log(2 * d / delta)
    log_term = math.log(2 * d / delta)
    denom = math.log(d / (big_d * math.e) * log_term)
    if denom <= 0:
        # Degenerate corner (d barely above D*e): fall back to medium bound,
        # which always dominates the light-load expression.
        return math.e * log_term
    return 1.3 * log_term / denom


def fingerprint_length_distinct(distinct: int, rows: int, delta: float) -> int:
    """Theorems 6/7 fingerprint length in bits.

    ``f = ceil(log2(d * M^2 / delta))`` where ``M`` bounds the per-row
    distinct load.  Crucially this is independent of the stream length and
    of ``w``; e.g. with ``d=1000`` and ``delta=1e-4``, 64-bit fingerprints
    support ~500M distinct keys.
    """
    m = max_row_load_bound(distinct, rows, delta)
    return max(1, math.ceil(math.log2(rows * m * m / delta)))


def supported_distinct_at(bits: int, rows: int, delta: float) -> int:
    """Invert :func:`fingerprint_length_distinct`: the largest distinct
    count supported by ``bits``-wide fingerprints (binary search; used to
    check the paper's '500M at 64 bits' example)."""
    lo, hi = 1, 1
    while (fingerprint_length_distinct(hi, rows, delta) <= bits
           and hi < 1 << 62):
        lo, hi = hi, hi * 2
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if fingerprint_length_distinct(mid, rows, delta) <= bits:
            lo = mid
        else:
            hi = mid
    return lo


def collision_probability(bits: int, same_row_pairs: int) -> float:
    """Union-bound probability that any of ``same_row_pairs`` key pairs in
    the same row collide under ``bits``-wide fingerprints."""
    if bits < 1:
        raise ValueError(f"bits must be positive, got {bits}")
    if same_row_pairs < 0:
        raise ValueError(f"pair count must be >= 0, got {same_row_pairs}")
    return min(1.0, same_row_pairs * 2.0 ** (-bits))


def _validate(count: int, delta: float) -> None:
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
