"""QoS policy engine: priority classes, weighted fair service, preemption.

The multi-tenant :class:`~repro.cluster.scheduler.QueryScheduler`
consults a :class:`QosPolicy` at every admission and service decision.
The policy is a set of named :class:`PriorityClass`\\ es (e.g.
``interactive`` / ``standard`` / ``batch``), each carrying:

* a **priority** — admission order and who may preempt whom (strictly
  higher priority only);
* a **weight** — the class's share of service under deficit round
  robin (:class:`DeficitRoundRobin`), replacing the PR-3 fixed
  rotation;
* a **slot reservation** — a floor of serving slots held back for the
  class: other classes cannot occupy them at admission, and preemption
  can never push the class below its floor.  A ``batch`` floor of one
  slot is what makes the policy starvation-free under sustained
  ``interactive`` load;
* a **preemptible** flag — whether an arriving strictly-higher-priority
  tenant may suspend a running member of this class mid-pass.

Three built-in policies (``BUILTIN_POLICIES``):

* ``fifo`` — one class, no reservations, no preemption; byte-identical
  to the pre-QoS scheduler (the default, so classless workloads are
  unchanged);
* ``tiers`` — ``interactive`` (priority 20, weight 4, one reserved
  slot, not preemptible) / ``standard`` (priority 10, weight 2) /
  ``batch`` (priority 0, weight 1, one reserved slot, preemptible),
  preemption enabled;
* ``tiers-no-preempt`` — the same classes with preemption disabled
  (the control arm of ``repro bench qos``).

:func:`parse_policy` additionally accepts a compact custom-policy spec
so CLI users can define classes inline.  The full model (DRR math,
preemption state machine, starvation-freedom argument) is documented in
``docs/QOS.md``.

>>> policy = parse_policy("tiers")
>>> policy.resolve("interactive").weight
4.0
>>> policy.resolve(None).name          # unhinted tenants -> default
'standard'
>>> custom = parse_policy("rt:prio=5,weight=8,reserve=1,rigid;bg:prio=0")
>>> custom.resolve("bg").preemptible
True
>>> custom.default_class               # first class unless marked
'rt'
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "PriorityClass",
    "QosPolicy",
    "DeficitRoundRobin",
    "BUILTIN_POLICIES",
    "fifo_policy",
    "tiers_policy",
    "parse_policy",
]


@dataclasses.dataclass(frozen=True)
class PriorityClass:
    """One named QoS class and its service parameters."""

    name: str
    #: Higher priority is admitted first and may preempt strictly lower.
    priority: int
    #: DRR service share relative to other *active* classes (> 0).
    weight: float = 1.0
    #: Serving-slot floor held back for this class (see module doc).
    reserved_slots: int = 0
    #: May a strictly-higher-priority arrival suspend this class?
    preemptible: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("priority class needs a non-empty name")
        if self.weight <= 0:
            raise ValueError(
                f"class {self.name!r}: weight must be > 0 (a zero weight "
                f"would starve the class under DRR), got {self.weight}"
            )
        if self.reserved_slots < 0:
            raise ValueError(
                f"class {self.name!r}: reserved_slots must be >= 0, "
                f"got {self.reserved_slots}"
            )


@dataclasses.dataclass(frozen=True)
class QosPolicy:
    """A named set of priority classes plus the preemption switch."""

    name: str
    classes: Tuple[PriorityClass, ...]
    default_class: str
    preemption: bool = True

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("a QoS policy needs at least one class")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names in policy: {names}")
        if self.default_class not in names:
            raise ValueError(
                f"default class {self.default_class!r} is not one of "
                f"the policy's classes ({', '.join(names)})"
            )

    # -- lookups --------------------------------------------------------------
    def resolve(self, name: Optional[str]) -> PriorityClass:
        """The class for a tenant's ``priority`` hint (None = default).

        Raises :class:`ValueError` naming the available classes when the
        hint is unknown — a trace recorded against one policy replayed
        under another should fail loudly, not silently re-class.
        """
        if name is None:
            name = self.default_class
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise ValueError(
            f"unknown priority class {name!r} (policy {self.name!r} "
            f"defines: {', '.join(c.name for c in self.classes)})"
        )

    @property
    def class_names(self) -> List[str]:
        """Class names in declaration order."""
        return [cls.name for cls in self.classes]

    @property
    def total_reserved(self) -> int:
        """Sum of all classes' slot floors."""
        return sum(cls.reserved_slots for cls in self.classes)

    # -- admission math -------------------------------------------------------
    def validate_slots(self, slots: int) -> None:
        """The policy's floors must fit the scheduler's slot budget."""
        if self.total_reserved > slots:
            raise ValueError(
                f"policy {self.name!r} reserves {self.total_reserved} "
                f"slots but the scheduler only has {slots}"
            )

    def held_back_from(self, cls: PriorityClass,
                       in_service: Mapping[str, int]) -> int:
        """Slots the other classes' unfilled floors withhold from
        ``cls``.  ``in_service`` maps class name -> slots currently
        held by running tenants of that class."""
        return sum(
            max(0, other.reserved_slots - in_service.get(other.name, 0))
            for other in self.classes if other.name != cls.name
        )

    def available_to(self, cls: PriorityClass, free_slots: int,
                     in_service: Mapping[str, int]) -> int:
        """Slots ``cls`` may actually claim right now: the free slots
        minus every *other* class's unfilled reservation floor."""
        return free_slots - self.held_back_from(cls, in_service)

    def best_case_slots(self, cls: PriorityClass, slots: int) -> int:
        """Most slots ``cls`` could ever hold (empty scheduler): used to
        reject tenants whose ``slots`` ask can never be satisfied."""
        return slots - self.held_back_from(cls, {})

    def may_preempt(self, arriving: PriorityClass,
                    victim: PriorityClass) -> bool:
        """Preemption eligibility: enabled, the victim's class allows
        it, and the arrival outranks the victim *strictly*."""
        return (self.preemption and victim.preemptible
                and arriving.priority > victim.priority)

    def describe(self) -> str:
        """One line per class (CLI/diagnostics)."""
        parts = []
        for cls in sorted(self.classes, key=lambda c: -c.priority):
            flags = [] if cls.preemptible else ["rigid"]
            if cls.reserved_slots:
                flags.append(f"reserve={cls.reserved_slots}")
            if cls.name == self.default_class:
                flags.append("default")
            suffix = f" [{', '.join(flags)}]" if flags else ""
            parts.append(f"{cls.name}(prio={cls.priority}, "
                         f"weight={cls.weight:g}){suffix}")
        state = "on" if self.preemption else "off"
        return f"{self.name}: {'; '.join(parts)}; preemption {state}"


class DeficitRoundRobin:
    """Weighted fair service across the active tenants.

    Each global scheduler tick, every active tenant earns credit
    proportional to its class weight — normalized by the *largest
    weight currently active*, so the heaviest class steps every tick
    and the scheduler stays work-conserving (a lone ``batch`` tenant is
    never slowed down).  A tenant whose accumulated deficit reaches one
    quantum is serviced that tick and pays the quantum back.  With
    uniform weights every tenant steps every tick — byte-identical to
    the pre-QoS scheduler.

    Service-rate guarantee: an active tenant with weight ``w`` advances
    at least ``floor(T * w / w_max)`` protocol ticks over any window of
    ``T`` global ticks, so every positive-weight class is
    starvation-free *while it holds a slot* (the reservation floors in
    :class:`QosPolicy` guarantee it can hold one).

    >>> drr = DeficitRoundRobin()
    >>> for key in ("fast", "slow"):
    ...     drr.admit(key)
    >>> weights = {"fast": 4.0, "slow": 1.0}
    >>> [sorted(drr.serviced(weights)) for _ in range(4)]
    [['fast'], ['fast'], ['fast'], ['fast', 'slow']]
    """

    #: Tolerance for float credit accumulation (e.g. 3 * (1/3)).
    _EPSILON = 1e-9

    def __init__(self) -> None:
        self._deficit: Dict[object, float] = {}

    def admit(self, key: object) -> None:
        """Start tracking ``key`` with an empty deficit."""
        self._deficit[key] = 0.0

    def forget(self, key: object) -> None:
        """Stop tracking ``key`` (completion or preemption — a resumed
        tenant re-enters via :meth:`admit` with a fresh deficit)."""
        self._deficit.pop(key, None)

    def serviced(self, weights: Mapping[object, float]) -> List[object]:
        """Advance one global tick: credit every key in ``weights`` and
        return the keys (in ``weights`` iteration order) whose deficit
        reached a full quantum.  Never empty when ``weights`` is not:
        the max-weight key always earns a full quantum."""
        if not weights:
            return []
        max_weight = max(weights.values())
        ready: List[object] = []
        for key, weight in weights.items():
            credit = self._deficit.get(key, 0.0) + weight / max_weight
            if credit >= 1.0 - self._EPSILON:
                credit -= 1.0
                ready.append(key)
            self._deficit[key] = credit
        return ready


# ---------------------------------------------------------------------------
# Built-in policies and the CLI policy parser
# ---------------------------------------------------------------------------

def fifo_policy() -> QosPolicy:
    """One class, no floors, no preemption: the pre-QoS scheduler."""
    return QosPolicy(
        name="fifo",
        classes=(PriorityClass("standard", priority=0, weight=1.0,
                               preemptible=False),),
        default_class="standard",
        preemption=False,
    )


def tiers_policy(preemption: bool = True) -> QosPolicy:
    """The three-tier interactive/standard/batch policy.

    ``interactive`` keeps one slot reserved (latency headroom) and is
    never preempted; ``batch`` also keeps one slot reserved, which is
    the starvation-freedom floor: preemption can never push the class
    below it, so batch work always progresses.
    """
    return QosPolicy(
        name="tiers" if preemption else "tiers-no-preempt",
        classes=(
            PriorityClass("interactive", priority=20, weight=4.0,
                          reserved_slots=1, preemptible=False),
            PriorityClass("standard", priority=10, weight=2.0),
            PriorityClass("batch", priority=0, weight=1.0,
                          reserved_slots=1),
        ),
        default_class="standard",
        preemption=preemption,
    )


#: Named policies the CLI accepts directly.
BUILTIN_POLICIES = {
    "fifo": fifo_policy,
    "tiers": lambda: tiers_policy(preemption=True),
    "tiers-no-preempt": lambda: tiers_policy(preemption=False),
}


def _parse_class(chunk: str, index: int) -> Tuple[PriorityClass, bool]:
    """One ``name:field,field,...`` chunk -> (class, is_default)."""
    if ":" not in chunk:
        raise ValueError(
            f"policy spec: class {chunk!r} needs fields "
            "(name:prio=INT[,weight=FLOAT,...])"
        )
    name, _, body = chunk.partition(":")
    name = name.strip()
    if not name:
        raise ValueError(f"policy spec: class #{index + 1} has no name")
    priority = 0
    weight = 1.0
    reserved = 0
    preemptible = True
    default = False
    for field in filter(None, (f.strip() for f in body.split(","))):
        key, _, value = field.partition("=")
        try:
            if key == "prio":
                priority = int(value)
            elif key == "weight":
                weight = float(value)
            elif key == "reserve":
                reserved = int(value)
            elif key == "rigid" and not value:
                preemptible = False
            elif key == "default" and not value:
                default = True
            else:
                raise ValueError
        except ValueError:
            raise ValueError(
                f"policy spec: class {name!r} has bad field {field!r} "
                "(expected prio=INT, weight=FLOAT, reserve=INT, rigid, "
                "or default)"
            ) from None
    return (PriorityClass(name, priority=priority, weight=weight,
                          reserved_slots=reserved,
                          preemptible=preemptible), default)


def parse_policy(text: str) -> QosPolicy:
    """A built-in policy name, or a compact custom class spec.

    Custom grammar (``;``-separated classes)::

        [nopreempt;] name:prio=P[,weight=W][,reserve=R][,rigid][,default]

    ``rigid`` marks a class non-preemptible; ``default`` marks the
    class unhinted tenants fall into (first class otherwise).
    """
    text = text.strip()
    builtin = BUILTIN_POLICIES.get(text)
    if builtin is not None:
        return builtin()
    chunks = [c.strip() for c in text.split(";") if c.strip()]
    preemption = True
    if chunks and chunks[0] == "nopreempt":
        preemption = False
        chunks = chunks[1:]
    if not chunks or not any(":" in chunk for chunk in chunks):
        # A bare word that is not a built-in is a typo, not a one-class
        # custom policy.
        raise ValueError(
            f"unknown policy {text!r} (built-ins: "
            f"{', '.join(sorted(BUILTIN_POLICIES))}; or a custom spec "
            "like 'rt:prio=5,weight=8,reserve=1;bg:prio=0')"
        )
    classes: List[PriorityClass] = []
    default_class: Optional[str] = None
    for index, chunk in enumerate(chunks):
        cls, is_default = _parse_class(chunk, index)
        classes.append(cls)
        if is_default:
            if default_class is not None:
                raise ValueError(
                    "policy spec: more than one class marked default"
                )
            default_class = cls.name
    return QosPolicy(
        name="custom",
        classes=tuple(classes),
        default_class=default_class or classes[0].name,
        preemption=preemption,
    )


def plan_preemption(policy: QosPolicy, arriving: PriorityClass,
                    needed: int, shortfall: int,
                    candidates: Sequence[Tuple[object, PriorityClass, int]],
                    in_service: Mapping[str, int]) -> Optional[List[object]]:
    """Choose victims to free ``shortfall`` more slots for an arrival.

    ``candidates`` are ``(key, class, slots)`` triples of the running
    tenants, already ordered by preference (the scheduler passes lowest
    priority first, most recently admitted first — minimizing both the
    rank and the amount of work thrown away).  A victim must be
    preemptible by ``arriving`` and its class must stay at or above its
    reservation floor after removal.  Returns the victim keys, or
    ``None`` when no combination frees enough — preemption is then not
    attempted at all (suspending tenants without admitting anyone would
    only waste work).
    """
    if shortfall <= 0:
        return []
    if not policy.preemption or needed <= 0:
        return None
    remaining = dict(in_service)
    victims: List[object] = []
    freed = 0
    for key, cls, slots in candidates:
        if freed >= shortfall:
            break
        if not policy.may_preempt(arriving, cls):
            continue
        if remaining.get(cls.name, 0) - slots < cls.reserved_slots:
            continue  # would breach the victim class's floor
        remaining[cls.name] = remaining.get(cls.name, 0) - slots
        victims.append(key)
        freed += slots
    if freed < shortfall:
        return None
    return victims
