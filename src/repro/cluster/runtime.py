"""End-to-end Cheetah runtime: functional pruning + calibrated timing.

``CheetahRuntime.run`` executes the full flow — planner decomposition,
control-plane rule install, per-entry switch pruning, master completion
— on real data, then prices the run with the cost model:

* **network**: serializing and streaming every pass's entries through
  the shared link budget (the 10G/20G knob of Figure 8);
* **computation**: the master's service time that the streaming window
  could not hide (Figure 9's blocking effect) plus result merge;
* **other**: job setup, control-plane install, switch latency.

``extrapolate_to_rows`` re-prices the timing at paper scale using the
pruning fractions measured on the (sampled) input — conservative for
DISTINCT/TOP-N/GROUP BY, whose pruning *improves* with scale (Fig. 11).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional, Union

from repro.cluster.costmodel import CostModel, TimingBreakdown
from repro.cluster.spark import result_cardinality, total_input_entries
from repro.db.executor import ExecutionResult
from repro.db.planner import CheetahRun, QueryPlanner, TrafficStats
from repro.db.queries import CompoundQuery, Query
from repro.db.table import Table
from repro.switch.controlplane import ControlPlane
from repro.switch.resources import SwitchModel, TOFINO_MODEL

TableSet = Union[Table, Mapping[str, Table]]

#: Serialization overlap for compound queries (§8.2.1: A+B completes
#: faster than A then B because column pre-processing is pipelined).
COMPOUND_PIPELINE_FACTOR = 0.75


@dataclasses.dataclass
class CheetahReport:
    """One Cheetah run: result + traffic + timing."""

    result: ExecutionResult
    traffic: TrafficStats
    breakdown: TimingBreakdown

    @property
    def completion_seconds(self) -> float:
        """Total completion time."""
        return self.breakdown.total

    @property
    def unpruned_fraction(self) -> float:
        """Fraction of the pruned pass forwarded to the master."""
        return self.traffic.unpruned_fraction


class CheetahRuntime:
    """Prices a planned Cheetah execution."""

    def __init__(self, cost_model: Optional[CostModel] = None,
                 workers: int = 5, network_bps: float = 10e9,
                 switch: SwitchModel = TOFINO_MODEL, seed: int = 0):
        self.cost_model = cost_model or CostModel()
        self.workers = workers
        self.network_bps = network_bps
        self.switch = switch
        self.planner = QueryPlanner(switch, seed=seed)

    def run(self, query: Query, tables: TableSet,
            extrapolate_to_rows: Optional[int] = None) -> CheetahReport:
        """Execute ``query`` with pruning and report timing.

        Extrapolation prices the run as if the input had
        ``extrapolate_to_rows`` entries, using per-op scale laws on the
        measured pruning (see :meth:`_extrapolate_forwarded`).  Switch
        structures keep their real (full-scale) sizes; pass
        ``structure_scale`` to the planner explicitly to study shrunken
        structures (ablation benches do).
        """
        planner = self.planner
        plan = planner.plan(query)
        control_plane = ControlPlane(self.switch)
        run = plan.run(tables, control_plane)
        if isinstance(query, CompoundQuery):
            return self._price_compound(query, run, tables,
                                        extrapolate_to_rows)
        breakdown = self._price(query.query_type, run.traffic,
                                run.result, control_plane,
                                extrapolate_to_rows)
        return CheetahReport(result=run.result, traffic=run.traffic,
                             breakdown=breakdown)

    # -- pricing ---------------------------------------------------------------
    @staticmethod
    def _extrapolate_forwarded(op: str, traffic: TrafficStats,
                               full_first: int) -> int:
        """Forwarded entries at ``full_first`` input rows.

        Scale behaviour differs per op (Figure 11):

        * filter / join — selectivity is scale-invariant: scale the
          measured fraction;
        * DISTINCT / GROUP BY / HAVING — the structure converges, so the
          extra rows forward at the *steady-state tail rate*, not the
          warm-up-inflated average;
        * TOP-N / SKYLINE — the forwarded count grows only
          logarithmically (Theorem 3); scale it by the log ratio.
        """
        import math

        sample_first = traffic.first_pass_entries
        sample_fwd = traffic.forwarded_entries
        if sample_first == 0 or full_first <= sample_first:
            if sample_first == 0:
                return 0
            return round(sample_fwd * full_first / sample_first)
        if op in ("topn", "skyline"):
            growth = math.log(full_first) / math.log(max(2, sample_first))
            return min(full_first, round(sample_fwd * growth))
        if traffic.tail_unpruned_fraction is not None:
            extra = full_first - sample_first
            return min(full_first, round(
                sample_fwd + extra * traffic.tail_unpruned_fraction))
        return round(sample_fwd * full_first / sample_first)

    def _price(self, op: str, traffic: TrafficStats,
               result: ExecutionResult, control_plane: ControlPlane,
               extrapolate_to_rows: Optional[int]) -> TimingBreakdown:
        model = self.cost_model
        scale = 1.0
        first = traffic.first_pass_entries
        if extrapolate_to_rows is not None and first > 0:
            scale = extrapolate_to_rows / first
        first = round(first * scale)
        forwarded = self._extrapolate_forwarded(op, traffic, first)
        second = round(traffic.second_pass_entries * scale)

        stream = model.cheetah_stream_seconds(first, self.workers,
                                              self.network_bps)
        second_master = 0.0
        if second:
            if op == "join":
                # JOIN's second pass re-streams switch-format packets
                # (they are pruned in flight): full Cheetah wire cost;
                # its master work is the forwarded entries, priced below.
                stream += model.cheetah_stream_seconds(
                    second, self.workers, self.network_bps)
            else:
                # HAVING / SUM-GROUP-BY partial second passes bypass the
                # switch: batched + compressed like ordinary Spark
                # traffic, merged at the batched rate.
                stream += (second * model.spark_bits_per_entry
                           / self.network_bps)
                second_master = second / model.spark_master_merge_rate
        blocking = model.master_blocking_seconds(op, first, forwarded,
                                                 stream)
        results = max(1, round(result_cardinality(result.output) * scale))
        merge = second_master + results / model.spark_master_merge_rate
        install = sum(
            inst.install_seconds
            for inst in control_plane.installed_queries()
        )
        other = (model.cheetah_setup_seconds + install
                 + model.switch_latency_seconds)
        return TimingBreakdown(computation=blocking + merge,
                               network=stream, other=other)

    def _price_compound(self, query: CompoundQuery, run: CheetahRun,
                        tables: TableSet,
                        extrapolate_to_rows: Optional[int]) -> CheetahReport:
        computation = network = other = 0.0
        for part_query, part_run in zip(query.parts, run.parts):
            part_rows = None
            if extrapolate_to_rows is not None:
                share = (total_input_entries(part_query, tables)
                         / total_input_entries(query, tables))
                part_rows = round(extrapolate_to_rows * share)
            part_breakdown = self._price(
                part_query.query_type, part_run.traffic, part_run.result,
                ControlPlane(self.switch), part_rows,
            )
            computation += part_breakdown.computation
            network += part_breakdown.network
            other = max(other, part_breakdown.other)  # one shared setup
        network *= COMPOUND_PIPELINE_FACTOR
        return CheetahReport(
            result=run.result,
            traffic=run.traffic,
            breakdown=TimingBreakdown(computation, network, other),
        )
