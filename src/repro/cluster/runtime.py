"""End-to-end Cheetah runtime: functional pruning + calibrated timing.

``CheetahRuntime.run`` executes the full flow — planner decomposition,
control-plane rule install, per-entry switch pruning, master completion
— on real data, then prices the run with the cost model:

* **network**: serializing and streaming every pass's entries through
  the shared link budget (the 10G/20G knob of Figure 8);
* **computation**: the master's service time that the streaming window
  could not hide (Figure 9's blocking effect) plus result merge;
* **other**: job setup, control-plane install, switch latency.

``extrapolate_to_rows`` re-prices the timing at paper scale using the
pruning fractions measured on the (sampled) input — conservative for
DISTINCT/TOP-N/GROUP BY, whose pruning *improves* with scale (Fig. 11).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.cluster.costmodel import CostModel, TimingBreakdown
from repro.cluster.spark import result_cardinality, total_input_entries
from repro.core.base import PruneStats
from repro.db.executor import ExecutionResult
from repro.db.planner import CheetahRun, QueryPlanner, TrafficStats
from repro.db.queries import CompoundQuery, Query
from repro.db.table import Table
from repro.sketches.hashing import row_of, rows_of_batch
from repro.switch.compiler import QuerySpec
from repro.switch.controlplane import (
    ControlPlane,
    QueryCheckpoint,
    RuleInstallation,
)
from repro.switch.resources import SwitchModel, TOFINO_MODEL

TableSet = Union[Table, Mapping[str, Table]]

#: Serialization overlap for compound queries (§8.2.1: A+B completes
#: faster than A then B because column pre-processing is pipelined).
COMPOUND_PIPELINE_FACTOR = 0.75

#: Seed perturbation for shard routing, so the shard hash is independent
#: of the in-shard row hashes that share the entry key.
_SHARD_ROUTE_SALT = 0x5A4D


def shard_key_fn(query_type: str) -> Optional[Callable]:
    """Routing-key extractor for a query type's wire entries.

    Stateful pruners need all entries of one logical key on the same
    shard (a JOIN key must hit the shard whose Bloom filter saw it in
    pass 1; a group's entries must share a slot row), so routing hashes
    the key component.  ``None`` means "route on the entry itself"
    (DISTINCT values, TOP-N values, SKYLINE points), with an arrival
    counter as fallback for unhashable entries (filter rows — the
    FilterPruner is stateless, so any deterministic spread is sound).
    """
    if query_type == "join":
        return lambda entry: entry[1]
    if query_type in ("groupby", "having"):
        return lambda entry: entry[0]
    return None


def shard_of(key, shards: int, seed: int = 0) -> int:
    """The switch pipeline an entry key hash-routes to.

    This is *the* routing rule — :class:`ShardedPruner` and the cluster
    simulation's SUM GROUP BY aggregation both use it, so an entry key
    lands on the same pipe regardless of which frontend drives it.
    """
    return row_of(key, shards, seed ^ _SHARD_ROUTE_SALT)


def ingress_capacity(per_pipeline: Optional[int],
                     shards: int) -> Optional[int]:
    """Aggregate ingress-queue budget of ``shards`` switch pipelines.

    Each simulated pipeline owns a finite ingress queue of
    ``per_pipeline`` packets (``None`` = unbounded, the historical
    behaviour).  The event-loop simulation models the union of the K
    per-pipeline queues as one worker→switch channel bound — entries
    hash across the pipelines, so the aggregate budget scales with the
    pipeline count, exactly like adding a switch adds its own SRAM
    ingress buffer.  See ``docs/CONGESTION.md`` for how tail drops at
    this bound feed AIMD rate controllers.
    """
    if per_pipeline is None:
        return None
    if per_pipeline < 1:
        raise ValueError(
            f"per-pipeline ingress capacity must be >= 1 (or None for "
            f"unbounded), got {per_pipeline}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return per_pipeline * shards


class ShardedPruner:
    """K per-shard pruner instances behind one pruner-shaped facade.

    Hash-partitions entries across ``K`` simulated switch pipelines
    (each shard owns a full instance of the algorithm's data structures)
    and merges the per-shard prune statistics.  Per-shard decisions are
    sound for every Cheetah pruner: a shard prunes an entry only on
    evidence from entries it has itself seen, which is a subset of the
    global stream — so a sharded prune decision is always justified
    globally (the superset-safety invariant of §3 carries over).

    ``offer``/``offer_batch`` are bit-identical: batch routing hashes
    the whole batch at once and preserves per-shard entry order.
    """

    def __init__(self, pruners: Sequence, key_fn: Optional[Callable] = None,
                 seed: int = 0):
        if not pruners:
            raise ValueError("ShardedPruner needs at least one shard")
        self.pruners = list(pruners)
        self.key_fn = key_fn
        self.seed = seed
        self._arrival = 0

    @property
    def name(self) -> str:
        return self.pruners[0].name

    @property
    def guarantee(self):
        return self.pruners[0].guarantee

    @property
    def shards(self) -> int:
        """Number of switch pipelines entries are partitioned across."""
        return len(self.pruners)

    # -- routing -------------------------------------------------------------
    def _route(self, entry) -> int:
        key = self.key_fn(entry) if self.key_fn is not None else entry
        try:
            return shard_of(key, len(self.pruners), self.seed)
        except TypeError:
            # Unhashable entry (e.g. a filter row): deterministic
            # arrival-counter spread.
            arrival = self._arrival
            self._arrival += 1
            return row_of(arrival, len(self.pruners),
                          self.seed ^ _SHARD_ROUTE_SALT)

    def _route_batch(self, entries) -> List[int]:
        key_fn = self.key_fn
        keys = [key_fn(e) for e in entries] if key_fn is not None \
            else entries
        routed = rows_of_batch(keys, len(self.pruners),
                               self.seed ^ _SHARD_ROUTE_SALT)
        if routed is None:
            route = self._route
            if key_fn is not None:
                seed = self.seed ^ _SHARD_ROUTE_SALT
                shards = len(self.pruners)
                routed = [row_of(key, shards, seed) for key in keys]
            else:
                routed = [route(entry) for entry in entries]
        return routed

    # -- data plane ----------------------------------------------------------
    def offer(self, entry) -> bool:
        """Route one entry to its shard; True iff pruned there."""
        return self.pruners[self._route(entry)].offer(entry)

    def offer_batch(self, entries) -> List[bool]:
        """Route a batch; per-shard sub-batches keep the arrival order,
        so decisions match per-entry :meth:`offer` calls exactly."""
        routed = self._route_batch(entries)
        shards = len(self.pruners)
        buckets: List[list] = [[] for _ in range(shards)]
        positions: List[list] = [[] for _ in range(shards)]
        for position, (entry, shard) in enumerate(zip(entries, routed)):
            buckets[shard].append(entry)
            positions[shard].append(position)
        out = [False] * len(entries)
        for shard, bucket in enumerate(buckets):
            if not bucket:
                continue
            decisions = self.pruners[shard].offer_batch(bucket)
            for position, decision in zip(positions[shard], decisions):
                out[position] = decision
        return out

    # -- merged statistics / control -----------------------------------------
    @property
    def stats(self) -> PruneStats:
        """Per-shard prune statistics merged into one view."""
        merged = PruneStats()
        for pruner in self.pruners:
            merged.offered += pruner.stats.offered
            merged.pruned += pruner.stats.pruned
        return merged

    def per_shard_stats(self) -> List[PruneStats]:
        """Each shard's own prune counters (cost-model input)."""
        return [pruner.stats for pruner in self.pruners]

    def start_second_pass(self) -> None:
        """JOIN pass boundary, fanned out to every shard."""
        for pruner in self.pruners:
            pruner.start_second_pass()

    def start_large_table(self) -> None:
        """Asymmetric-JOIN phase boundary, fanned out to every shard."""
        for pruner in self.pruners:
            pruner.start_large_table()

    def candidate_keys(self) -> set:
        """HAVING candidate keys, unioned across shards."""
        merged = set()
        for pruner in self.pruners:
            merged |= pruner.candidate_keys()
        return merged

    def resources(self):
        """Per-switch resource usage (each shard is its own pipeline,
        so the budget check is per shard, not summed)."""
        return self.pruners[0].resources()

    def parameters(self) -> dict:
        params = dict(self.pruners[0].parameters())
        params["shards"] = len(self.pruners)
        return params

    def reset(self) -> None:
        for pruner in self.pruners:
            pruner.reset()
        self._arrival = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (f"ShardedPruner({type(self.pruners[0]).__name__} x "
                f"{len(self.pruners)})")


def _shard_worker_main(conn) -> None:
    """Worker-process loop hosting one shard's pruner.

    The first message is the (pickled) pruner itself; every later
    message is a ``(command, ...)`` tuple answered with
    ``("ok", result)`` or ``("err", exception)`` — the parent re-raises
    the latter, so resource violations surface exactly as they would
    in-process.
    """
    pruner = conn.recv()
    while True:
        message = conn.recv()
        command = message[0]
        if command == "exit":
            conn.close()
            return
        try:
            if command == "offer_batch":
                result = pruner.offer_batch(message[1])
            elif command == "offer":
                result = pruner.offer(message[1])
            elif command == "stats":
                result = pruner.stats
            elif command == "sync":
                result = pruner
            else:  # ("call", method_name, args)
                result = getattr(pruner, message[1])(*message[2])
        except Exception as error:  # noqa: BLE001 - relayed to parent
            conn.send(("err", error))
        else:
            conn.send(("ok", result))


class ProcessPoolShardExecutor(ShardedPruner):
    """A :class:`ShardedPruner` whose shards run on worker processes.

    Same facade, same hash routing, same merged statistics — but each
    per-shard pruner is shipped (pickled) to its own OS process on
    first use, so ``K`` simulated switch pipelines occupy ``K`` cores.
    Decisions are deterministic and bit-identical to the serial
    facade: routing happens in the parent with the identical
    :func:`shard_of` rule, per-shard sub-batches preserve arrival
    order, and each worker's pruner sees exactly the entry stream its
    serial twin would (a pruner is itself deterministic given its
    stream), so the position-merged decision vector is reproducible
    run over run.

    The executor is **local until first offered work**: control calls
    before that mutate the in-process pruners directly.  :meth:`sync`
    pulls every worker's pruner state back into the parent's pruner
    *objects* (their identity is preserved — the control plane's
    checkpoint machinery holds references to them) and stops the
    workers; the next offer respawns workers from the synced state.
    This is how ``ShardedSwitchFrontend`` keeps the PR 5
    suspend/resume checkpoints working under ``parallel=True``: a
    checkpoint is always taken from freshly synced local state.

    Falls back to serial in-process execution (flagging
    :attr:`parallel_broken`) when worker processes cannot be spawned.
    """

    def __init__(self, pruners: Sequence, key_fn: Optional[Callable] = None,
                 seed: int = 0):
        super().__init__(pruners, key_fn=key_fn, seed=seed)
        self._workers: List = []
        self._conns: List = []
        self.parallel_broken = False

    # -- worker lifecycle ----------------------------------------------------
    @property
    def parallel_active(self) -> bool:
        """True while shard state lives in worker processes."""
        return bool(self._workers)

    def _ensure_workers(self) -> bool:
        if self._workers:
            return True
        if self.parallel_broken:
            return False
        import multiprocessing

        try:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None)
            workers, conns = [], []
            for pruner in self.pruners:
                parent_conn, child_conn = context.Pipe()
                process = context.Process(target=_shard_worker_main,
                                          args=(child_conn,), daemon=True)
                process.start()
                child_conn.close()
                parent_conn.send(pruner)
                workers.append(process)
                conns.append(parent_conn)
        except (OSError, ValueError, ImportError):
            self.parallel_broken = True
            return False
        self._workers = workers
        self._conns = conns
        return True

    def _ask(self, shard: int, message) -> object:
        self._conns[shard].send(message)
        return self._recv(shard)

    def _recv(self, shard: int) -> object:
        status, value = self._conns[shard].recv()
        if status == "err":
            raise value
        return value

    def _broadcast(self, message) -> List:
        for conn in self._conns:
            conn.send(message)
        return [self._recv(shard) for shard in range(len(self._conns))]

    def sync(self) -> None:
        """Pull worker state back into the local pruner objects and stop
        the workers (no-op when already local).

        The per-shard pruner *objects* are updated in place
        (``__dict__`` swap), so every external reference — the per-plane
        control planes, pending checkpoints — observes the synced
        state."""
        if not self._workers:
            return
        fresh = self._broadcast(("sync",))
        for local, remote in zip(self.pruners, fresh):
            local.__dict__.clear()
            local.__dict__.update(remote.__dict__)
        self.close()

    def close(self) -> None:
        """Stop the worker processes, discarding their state (call
        :meth:`sync` first to keep it)."""
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (OSError, ValueError):
                pass
        for process, conn in zip(self._workers, self._conns):
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
            conn.close()
        self._workers = []
        self._conns = []

    def __enter__(self) -> "ProcessPoolShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass

    # -- data plane ----------------------------------------------------------
    def offer(self, entry) -> bool:
        """Route one entry to its shard's worker; True iff pruned there.

        Correct but latency-bound (one IPC round trip per entry) — the
        parallel win is :meth:`offer_batch`, which keeps all K workers
        busy at once.
        """
        if not self._ensure_workers():
            return super().offer(entry)
        return self._ask(self._route(entry), ("offer", entry))

    def offer_batch(self, entries) -> List[bool]:
        """Scatter a batch to the shard workers, gather in shard order,
        merge by arrival position — decisions identical to the serial
        facade (the scatter/gather is just transport)."""
        if not entries:
            return []
        if not self._ensure_workers():
            return super().offer_batch(entries)
        routed = self._route_batch(entries)
        shards = len(self.pruners)
        buckets: List[list] = [[] for _ in range(shards)]
        positions: List[list] = [[] for _ in range(shards)]
        for position, (entry, shard) in enumerate(zip(entries, routed)):
            buckets[shard].append(entry)
            positions[shard].append(position)
        busy = [shard for shard, bucket in enumerate(buckets) if bucket]
        for shard in busy:
            self._conns[shard].send(("offer_batch", buckets[shard]))
        out = [False] * len(entries)
        for shard in busy:
            decisions = self._recv(shard)
            for position, decision in zip(positions[shard], decisions):
                out[position] = decision
        return out

    # -- merged statistics / control -----------------------------------------
    @property
    def stats(self) -> PruneStats:
        if not self._workers:
            return ShardedPruner.stats.fget(self)
        merged = PruneStats()
        for stats in self._broadcast(("stats",)):
            merged.offered += stats.offered
            merged.pruned += stats.pruned
        return merged

    def per_shard_stats(self) -> List[PruneStats]:
        if not self._workers:
            return super().per_shard_stats()
        return self._broadcast(("stats",))

    def start_second_pass(self) -> None:
        if not self._workers:
            super().start_second_pass()
        else:
            self._broadcast(("call", "start_second_pass", ()))

    def start_large_table(self) -> None:
        if not self._workers:
            super().start_large_table()
        else:
            self._broadcast(("call", "start_large_table", ()))

    def candidate_keys(self) -> set:
        if not self._workers:
            return super().candidate_keys()
        merged = set()
        for keys in self._broadcast(("call", "candidate_keys", ())):
            merged |= keys
        return merged

    def reset(self) -> None:
        if self._workers:
            self._broadcast(("call", "reset", ()))
        else:
            for pruner in self.pruners:
                pruner.reset()
        self._arrival = 0

    def __repr__(self) -> str:  # pragma: no cover
        state = "active" if self._workers else "local"
        return (f"ProcessPoolShardExecutor("
                f"{type(self.pruners[0]).__name__} x "
                f"{len(self.pruners)}, {state})")


def make_sharded(factory: Callable[[], object], shards: int,
                 query_type: Optional[str] = None, seed: int = 0,
                 parallel: bool = False):
    """Build ``shards`` instances of ``factory()`` behind a
    :class:`ShardedPruner` (or the bare pruner when ``shards == 1``).

    ``parallel=True`` returns a :class:`ProcessPoolShardExecutor`
    instead, running the K shards on K worker processes with
    bit-identical decisions."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return factory()
    facade = ProcessPoolShardExecutor if parallel else ShardedPruner
    return facade([factory() for _ in range(shards)],
                  key_fn=shard_key_fn(query_type or ""), seed=seed)


class ShardedSwitchFrontend:
    """K simulated switch pipelines behind one control-plane facade.

    Installs every query on each of ``shards`` independent
    :class:`ControlPlane` instances (one per simulated switch) and
    exposes the planner-facing surface — ``install_query`` / ``offer`` /
    ``installed_queries`` — so the whole Cheetah flow runs unchanged
    while entries hash-partition across the switches.

    ``max_slots`` is applied to every per-shard control plane: a packed
    query occupies one slot on *each* pipeline (it must be installed
    everywhere its entries may hash), so the concurrent-tenant budget of
    the sharded frontend equals that of a single switch.

    **Fault injection** (``docs/CHAOS.md``): :meth:`kill_shard` crashes
    one physical pipeline.  The K *logical* shards stay fixed — routing
    (:func:`shard_of`) and the merged :class:`ShardedPruner` view are
    untouched, which is what keeps every prune decision (and therefore
    every tenant result) byte-identical to a no-fault run — while the
    dead pipeline's per-query state is suspended via the PR 5
    checkpoints and re-homed to a surviving plane (K logical shards on
    K−1 physical pipelines, consistent-hashing style).
    :meth:`restart_shard` moves the migrated state back (K−1→K live).
    Naively re-routing keys K→K−1 would be *unsound* for stateful
    pruners: a JOIN pass-2 entry re-routed to a shard whose pass-1
    Bloom filters never saw its key would be over-pruned.
    """

    def __init__(self, switch: SwitchModel = TOFINO_MODEL, shards: int = 2,
                 seed: int = 0, max_slots: Optional[int] = None,
                 parallel: bool = False):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.seed = seed
        #: Run each query's shard pruners on a process pool
        #: (:class:`ProcessPoolShardExecutor`); decisions stay
        #: bit-identical, and checkpoints sync worker state back first.
        self.parallel = parallel
        self.planes = [ControlPlane(switch, seed=seed, max_slots=max_slots)
                       for _ in range(shards)]
        self._installed: dict = {}
        #: Physical pipelines currently crashed (see :meth:`kill_shard`).
        self._dead: set = set()
        #: dead plane -> {fid: (host plane, per-shard checkpoint)} —
        #: the dead pipeline's suspended state, in a survivor's custody.
        self._refugees: Dict[int, Dict[int, tuple]] = {}
        #: Queries migrated off dead pipelines (cumulative, telemetry).
        self.migrations = 0

    def install_query(self, spec: QuerySpec,
                      fid: Optional[int] = None) -> RuleInstallation:
        """Install ``spec`` on every switch; one merged installation
        receipt whose pruner is the sharded view."""
        first = self.planes[0].install_query(spec, fid=fid)
        installs = [first]
        installs += [plane.install_query(spec, fid=first.fid)
                     for plane in self.planes[1:]]
        facade = ProcessPoolShardExecutor if self.parallel else ShardedPruner
        view = facade(
            [inst.compiled.pruner for inst in installs],
            key_fn=shard_key_fn(spec.query_type),
            seed=self.seed,
        )
        compiled = dataclasses.replace(first.compiled, pruner=view)
        installation = RuleInstallation(
            fid=first.fid,
            compiled=compiled,
            # Switches install in parallel; the slowest plane gates.
            install_seconds=max(i.install_seconds for i in installs),
        )
        self._installed[first.fid] = installation
        # A pipeline that is currently dead cannot accept the push: the
        # controller compiles its copy (so the logical shard's pruner
        # exists behind the merged view) and parks it with a survivor
        # until the plane restarts.
        for dead in sorted(self._dead):
            parked = self.planes[dead].suspend_query(first.fid)
            if parked is not None:
                self._refugees[dead][first.fid] = (
                    self._host_for(first.fid), parked)
        return installation

    def uninstall_query(self, fid: int) -> None:
        """Remove a query's rules from every switch (a dead pipeline's
        parked copy is simply dropped — the query is finished)."""
        self._stop_parallel(fid, keep_state=False)
        for index, plane in enumerate(self.planes):
            if index in self._dead:
                self._refugees[index].pop(fid, None)
            else:
                plane.uninstall_query(fid)
        self._installed.pop(fid, None)

    def suspend_query(self, fid: int) -> Optional["ShardedQueryCheckpoint"]:
        """Checkpoint a live query on every shard (QoS preemption).

        Each pipeline's rules are removed while its pruner state is
        retained in a per-shard :class:`QueryCheckpoint`; the merged
        sharded view is kept alongside, so :meth:`resume_query`
        restores the exact pre-suspension state everywhere.  A dead
        pipeline contributes its parked refugee checkpoint.  Like
        :meth:`ControlPlane.suspend_query`, a fid that already
        FIN-drained and uninstalled returns ``None``.
        """
        self._stop_parallel(fid, keep_state=True)
        merged = self._installed.pop(fid, None)
        if merged is None:
            return None
        shards = []
        for index, plane in enumerate(self.planes):
            if index in self._dead:
                parked = self._refugees[index].pop(fid, None)
                shards.append(None if parked is None else parked[1])
            else:
                shards.append(plane.suspend_query(fid))
        return ShardedQueryCheckpoint(fid=fid, installation=merged,
                                      shards=tuple(shards))

    def resume_query(self,
                     checkpoint: "ShardedQueryCheckpoint",
                     ) -> RuleInstallation:
        """Re-install a suspended query on every shard.

        Every live pipeline holds the same packed composition, so if
        the first live shard's pack re-admits the checkpoint the rest
        do too (``ResourceExhausted`` therefore surfaces before any
        live shard is mutated).  A dead pipeline's sub-checkpoint is
        parked back with a survivor instead of re-installed.
        """
        for index, (plane, shard_checkpoint) in enumerate(
                zip(self.planes, checkpoint.shards)):
            if shard_checkpoint is None:
                continue
            if index in self._dead:
                self._refugees[index][checkpoint.fid] = (
                    self._host_for(checkpoint.fid), shard_checkpoint)
            else:
                plane.resume_query(shard_checkpoint)
        self._installed[checkpoint.fid] = checkpoint.installation
        return checkpoint.installation

    def _stop_parallel(self, fid: int, keep_state: bool) -> None:
        """Stop a query's shard workers (if any) before its per-plane
        pruner objects are checkpointed or discarded.

        ``keep_state=True`` syncs the worker state back into the plane
        pruner objects first (suspend/kill paths — the checkpoint must
        capture the live registers); ``keep_state=False`` just stops
        them (uninstall — the query is finished)."""
        installation = self._installed.get(fid)
        if installation is None:
            return
        view = installation.compiled.pruner
        if isinstance(view, ProcessPoolShardExecutor):
            if keep_state:
                view.sync()
            else:
                view.close()

    # -- fault injection (docs/CHAOS.md) --------------------------------------
    @property
    def live_shards(self) -> List[int]:
        """Physical pipelines currently serving (not crashed)."""
        return [i for i in range(self.shards) if i not in self._dead]

    @property
    def dead_shards(self) -> List[int]:
        """Physical pipelines currently crashed."""
        return sorted(self._dead)

    def _host_for(self, fid: int) -> int:
        """The surviving plane that takes custody of a migrated query
        (deterministic spread: fid modulo the live-plane count)."""
        survivors = self.live_shards
        return survivors[fid % len(survivors)]

    def kill_shard(self, shard: int) -> int:
        """Crash physical pipeline ``shard``, migrating its queries.

        Every installed query's per-shard state is suspended off the
        dead plane (:meth:`ControlPlane.suspend_query` — the same PR 5
        checkpoint preemption uses) and re-homed to a surviving plane.
        Logical routing and the merged pruner view are untouched, so
        the data plane's decisions — and every tenant's result — stay
        byte-identical to a no-fault run.  Returns the number of
        queries migrated.  Killing a dead shard, an out-of-range
        shard, or the last live pipeline raises ``ValueError``.
        """
        if not 0 <= shard < self.shards:
            raise ValueError(
                f"shard must be in [0, {self.shards}), got {shard}")
        if shard in self._dead:
            raise ValueError(f"shard {shard} is already dead")
        if len(self._dead) + 1 >= self.shards:
            raise ValueError(
                f"cannot kill shard {shard}: it is the last live "
                f"pipeline of {self.shards}")
        self._dead.add(shard)
        refugees: Dict[int, tuple] = {}
        for fid in sorted(self._installed):
            # A parallel query's live state is in its shard workers:
            # sync it back so the dead plane's checkpoint is current
            # (the next offer respawns workers from the synced state).
            self._stop_parallel(fid, keep_state=True)
            parked = self.planes[shard].suspend_query(fid)
            if parked is None:
                continue
            refugees[fid] = (self._host_for(fid), parked)
        self._refugees[shard] = refugees
        self.migrations += len(refugees)
        return len(refugees)

    def restart_shard(self, shard: int) -> int:
        """Bring a crashed pipeline back (K−1→K), restoring its state.

        Every refugee checkpoint parked at :meth:`kill_shard` time (or
        installed/preempted during the outage) is resumed back onto the
        restarted plane — the pack slot and footprint accounting move
        home, and the pruner objects never changed hands.  Returns the
        number of queries restored; restarting a live shard raises
        ``ValueError``.
        """
        if shard not in self._dead:
            raise ValueError(f"shard {shard} is not dead")
        refugees = self._refugees.pop(shard, {})
        self._dead.discard(shard)
        for fid in sorted(refugees):
            _host, parked = refugees[fid]
            self.planes[shard].resume_query(parked)
        return len(refugees)

    def parked_checkpoint(self, shard: int, fid: int):
        """The refugee :class:`QueryCheckpoint` of ``fid`` parked off
        dead plane ``shard`` (``None`` when not parked) — test hook."""
        entry = self._refugees.get(shard, {}).get(fid)
        return None if entry is None else entry[1]

    def refugee_hosts(self) -> Dict[int, Dict[int, int]]:
        """dead plane -> {fid: surviving host plane} (telemetry)."""
        return {shard: {fid: host for fid, (host, _parked)
                        in sorted(entries.items())}
                for shard, entries in sorted(self._refugees.items())}

    def offer(self, fid: int, entry) -> bool:
        """Data-plane prune decision on the entry's shard."""
        return self._installed[fid].compiled.pruner.offer(entry)

    def offer_batch(self, fid: int, entries) -> List[bool]:
        """Batched data-plane decisions across the shards."""
        return self._installed[fid].compiled.pruner.offer_batch(entries)

    def pruner_for(self, fid: int) -> ShardedPruner:
        """The sharded pruner view behind ``fid``."""
        return self._installed[fid].compiled.pruner

    def installed_queries(self) -> List[RuleInstallation]:
        """All live (merged) installations."""
        return list(self._installed.values())

    def per_shard_stats(self) -> List[PruneStats]:
        """Prune statistics per switch, merged over installed queries."""
        totals = [PruneStats() for _ in range(self.shards)]
        for installation in self._installed.values():
            for total, stats in zip(
                    totals,
                    installation.compiled.pruner.per_shard_stats()):
                total.offered += stats.offered
                total.pruned += stats.pruned
        return totals


@dataclasses.dataclass(frozen=True)
class ShardedQueryCheckpoint:
    """A query suspended across all shards: the merged installation
    plus one :class:`~repro.switch.controlplane.QueryCheckpoint` per
    pipeline (state preserved shard by shard)."""

    fid: int
    installation: RuleInstallation
    shards: tuple


@dataclasses.dataclass
class CheetahReport:
    """One Cheetah run: result + traffic + timing."""

    result: ExecutionResult
    traffic: TrafficStats
    breakdown: TimingBreakdown
    #: Number of switch pipelines the entries were sharded across.
    shards: int = 1
    #: Per-shard prune statistics when sharded (None for one switch).
    shard_stats: Optional[List[PruneStats]] = None

    @property
    def completion_seconds(self) -> float:
        """Total completion time."""
        return self.breakdown.total

    @property
    def unpruned_fraction(self) -> float:
        """Fraction of the pruned pass forwarded to the master."""
        return self.traffic.unpruned_fraction


class CheetahRuntime:
    """Prices a planned Cheetah execution.

    ``shards > 1`` runs the dataplane across that many simulated switch
    pipelines (entries hash-partitioned per query key; see
    :class:`ShardedSwitchFrontend`): the functional result is unchanged
    — the master completes the query on the union of the shards'
    forwarded entries — while the cost model streams the first pass
    through the parallel pipes, gated by the most-loaded shard.
    Compound (multi-part) queries run their parts unsharded.
    """

    def __init__(self, cost_model: Optional[CostModel] = None,
                 workers: int = 5, network_bps: float = 10e9,
                 switch: SwitchModel = TOFINO_MODEL, seed: int = 0,
                 shards: int = 1):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.cost_model = cost_model or CostModel()
        self.workers = workers
        self.network_bps = network_bps
        self.switch = switch
        self.shards = shards
        self.planner = QueryPlanner(switch, seed=seed)

    def run(self, query: Query, tables: TableSet,
            extrapolate_to_rows: Optional[int] = None) -> CheetahReport:
        """Execute ``query`` with pruning and report timing.

        Extrapolation prices the run as if the input had
        ``extrapolate_to_rows`` entries, using per-op scale laws on the
        measured pruning (see :meth:`_extrapolate_forwarded`).  Switch
        structures keep their real (full-scale) sizes; pass
        ``structure_scale`` to the planner explicitly to study shrunken
        structures (ablation benches do).
        """
        planner = self.planner
        plan = planner.plan(query)
        if self.shards > 1 and not isinstance(query, CompoundQuery):
            control_plane = ShardedSwitchFrontend(self.switch, self.shards)
        else:
            control_plane = ControlPlane(self.switch)
        run = plan.run(tables, control_plane)
        if isinstance(query, CompoundQuery):
            return self._price_compound(query, run, tables,
                                        extrapolate_to_rows)
        shard_stats = None
        if isinstance(control_plane, ShardedSwitchFrontend):
            shard_stats = control_plane.per_shard_stats()
        breakdown = self._price(query.query_type, run.traffic,
                                run.result, control_plane,
                                extrapolate_to_rows,
                                shard_stats=shard_stats)
        return CheetahReport(result=run.result, traffic=run.traffic,
                             breakdown=breakdown,
                             shards=self.shards, shard_stats=shard_stats)

    # -- pricing ---------------------------------------------------------------
    @staticmethod
    def _extrapolate_forwarded(op: str, traffic: TrafficStats,
                               full_first: int) -> int:
        """Forwarded entries at ``full_first`` input rows.

        Scale behaviour differs per op (Figure 11):

        * filter / join — selectivity is scale-invariant: scale the
          measured fraction;
        * DISTINCT / GROUP BY / HAVING — the structure converges, so the
          extra rows forward at the *steady-state tail rate*, not the
          warm-up-inflated average;
        * TOP-N / SKYLINE — the forwarded count grows only
          logarithmically (Theorem 3); scale it by the log ratio.
        """
        import math

        sample_first = traffic.first_pass_entries
        sample_fwd = traffic.forwarded_entries
        if sample_first == 0 or full_first <= sample_first:
            if sample_first == 0:
                return 0
            return round(sample_fwd * full_first / sample_first)
        if op in ("topn", "skyline"):
            growth = math.log(full_first) / math.log(max(2, sample_first))
            return min(full_first, round(sample_fwd * growth))
        if traffic.tail_unpruned_fraction is not None:
            extra = full_first - sample_first
            return min(full_first, round(
                sample_fwd + extra * traffic.tail_unpruned_fraction))
        return round(sample_fwd * full_first / sample_first)

    def _price(self, op: str, traffic: TrafficStats,
               result: ExecutionResult, control_plane: ControlPlane,
               extrapolate_to_rows: Optional[int],
               shard_stats: Optional[Sequence[PruneStats]] = None,
               ) -> TimingBreakdown:
        model = self.cost_model
        scale = 1.0
        first = traffic.first_pass_entries
        if extrapolate_to_rows is not None and first > 0:
            scale = extrapolate_to_rows / first
        first = round(first * scale)
        forwarded = self._extrapolate_forwarded(op, traffic, first)
        second = round(traffic.second_pass_entries * scale)

        # Sharded merge: K switch pipes stream in parallel, so the wire
        # time is gated by the most-loaded shard's share of the entries
        # (1/K under perfect balance).  The master-side costs stay whole:
        # one master absorbs the union of the forwarded streams.
        parallel = 1.0
        if shard_stats:
            offered = sum(s.offered for s in shard_stats)
            if offered:
                parallel = max(s.offered for s in shard_stats) / offered

        stream = parallel * model.cheetah_stream_seconds(
            first, self.workers, self.network_bps)
        second_master = 0.0
        if second:
            if op == "join":
                # JOIN's second pass re-streams switch-format packets
                # (they are pruned in flight): full Cheetah wire cost;
                # its master work is the forwarded entries, priced below.
                stream += parallel * model.cheetah_stream_seconds(
                    second, self.workers, self.network_bps)
            else:
                # HAVING / SUM-GROUP-BY partial second passes bypass the
                # switch: batched + compressed like ordinary Spark
                # traffic, merged at the batched rate.
                stream += (second * model.spark_bits_per_entry
                           / self.network_bps)
                second_master = second / model.spark_master_merge_rate
        blocking = model.master_blocking_seconds(op, first, forwarded,
                                                 stream)
        results = max(1, round(result_cardinality(result.output) * scale))
        merge = second_master + results / model.spark_master_merge_rate
        install = sum(
            inst.install_seconds
            for inst in control_plane.installed_queries()
        )
        other = (model.cheetah_setup_seconds + install
                 + model.switch_latency_seconds)
        return TimingBreakdown(computation=blocking + merge,
                               network=stream, other=other)

    def _price_compound(self, query: CompoundQuery, run: CheetahRun,
                        tables: TableSet,
                        extrapolate_to_rows: Optional[int]) -> CheetahReport:
        computation = network = other = 0.0
        for part_query, part_run in zip(query.parts, run.parts):
            part_rows = None
            if extrapolate_to_rows is not None:
                share = (total_input_entries(part_query, tables)
                         / total_input_entries(query, tables))
                part_rows = round(extrapolate_to_rows * share)
            part_breakdown = self._price(
                part_query.query_type, part_run.traffic, part_run.result,
                ControlPlane(self.switch), part_rows,
            )
            computation += part_breakdown.computation
            network += part_breakdown.network
            other = max(other, part_breakdown.other)  # one shared setup
        network *= COMPOUND_PIPELINE_FACTOR
        return CheetahReport(
            result=run.result,
            traffic=run.traffic,
            breakdown=TimingBreakdown(computation, network, other),
        )
