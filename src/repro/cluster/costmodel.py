"""Calibrated cost model for completion-time experiments (Figs 5-9).

Calibration sources, all from the paper:

* CWorkers generate ~10-12 Mpps (§7.1) — ``worker_serialize_rate``;
* one 64-byte frame per entry, so a 10G link carries ~19.5 Mpps but the
  5-worker aggregate shares a restricted 10/20G budget (§8.2.3) —
  ``bits_per_entry`` and the runtime's ``network_bps``;
* Figure 9's master blocking latencies at given unpruned fractions pin
  the master per-op service rates (``master_rate``);
* Figure 5/6 Spark completion times at the benchmark scales pin the
  Spark per-op worker task rates and the first-run penalty
  (``spark_rate`` / ``spark_first_run_factor``);
* Figure 8's breakdown shows Spark is compute-bound (no gain from 20G)
  while Cheetah is network-bound at 10G.

Table 3's hardware comparison is reproduced as :data:`HARDWARE_PROFILES`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict


@dataclasses.dataclass(frozen=True)
class TimingBreakdown:
    """Figure 8's three bars."""

    computation: float
    network: float
    other: float

    @property
    def total(self) -> float:
        """Completion time in seconds."""
        return self.computation + self.network + self.other

    def scaled(self, factor: float) -> "TimingBreakdown":
        """Uniformly scale all components (used for unit changes)."""
        return TimingBreakdown(self.computation * factor,
                               self.network * factor, self.other * factor)


#: Table 3 — throughput / latency of hardware choices.  Throughput in
#: bps (upper end of the paper's ranges), latency in seconds.
HARDWARE_PROFILES: Dict[str, Dict[str, float]] = {
    "server": {"throughput_bps": 100e9, "latency_s": 100e-6},
    "gpu": {"throughput_bps": 120e9, "latency_s": 25e-6},
    "fpga": {"throughput_bps": 100e9, "latency_s": 10e-6},
    "smartnic": {"throughput_bps": 100e9, "latency_s": 10e-6},
    "tofino2": {"throughput_bps": 12.8e12, "latency_s": 1e-6},
}


@dataclasses.dataclass
class CostModel:
    """All rates the timing experiments need.

    Rates are entries/second unless stated otherwise.
    """

    # -- Cheetah path ----------------------------------------------------------
    #: DPDK CWorker packet generation (per worker).
    worker_serialize_rate: float = 10e6
    #: Wire cost per entry: a minimum 64-byte Ethernet frame costs 84
    #: bytes of line time (preamble + inter-frame gap included).
    bits_per_entry: int = 84 * 8
    #: Master (C, DPDK) per-op service rates — calibrated to Fig. 9.
    master_rate: Dict[str, float] = dataclasses.field(default_factory=lambda: {
        "filter": 12e6,
        "distinct": 2e6,
        "groupby": 1e6,
        "topn": 5e6,
        "skyline": 0.3e6,
        "join": 1.5e6,
        "having": 2e6,
    })
    #: Fixed Cheetah job overhead (control messages, rule install ACK).
    cheetah_setup_seconds: float = 0.5

    # -- Spark path --------------------------------------------------------------
    #: Spark worker task rates (scan + task, per worker, subsequent runs).
    #: Filtering is vectorized and nearly free (why BigData A shows no
    #: Cheetah win); aggregations are the expensive tasks Cheetah removes.
    spark_rate: Dict[str, float] = dataclasses.field(default_factory=lambda: {
        "filter": 40e6,
        "distinct": 2.0e6,
        "groupby": 0.5e6,
        "topn": 2.0e6,
        "skyline": 1.0e6,
        "join": 0.6e6,
        "having": 0.5e6,
    })
    #: First-run slowdown (no cache/index, JIT warm-up) on the task rate.
    spark_first_run_factor: float = 0.55
    #: Extra fixed overhead of the first run (planning, compile).
    spark_first_run_overhead: float = 4.0
    #: Fixed Spark job overhead (scheduling) for subsequent runs.
    spark_setup_seconds: float = 1.2
    #: Master-side merge rate for workers' partial results (batched,
    #: compressed rows — much cheaper than per-packet entry parsing).
    spark_master_merge_rate: float = 10e6
    #: Spark's wire cost per transferred result entry: compressed and
    #: packed many-per-packet (§7.1), far below one frame per entry.
    spark_bits_per_entry: int = 10 * 8
    #: Spark network budget (it is compute-bound; this rarely binds).
    spark_network_bps: float = 10e9

    # -- shared --------------------------------------------------------------------
    #: Per-packet switch forwarding latency (Table 3, Tofino).
    switch_latency_seconds: float = 1e-6

    def master_service_rate(self, op: str) -> float:
        """Master per-entry service rate for ``op``."""
        try:
            return self.master_rate[op]
        except KeyError:
            raise KeyError(f"no master rate calibrated for op {op!r}") from None

    def spark_task_rate(self, op: str, first_run: bool = False) -> float:
        """Spark worker task rate for ``op``."""
        try:
            rate = self.spark_rate[op]
        except KeyError:
            raise KeyError(f"no Spark rate calibrated for op {op!r}") from None
        return rate * self.spark_first_run_factor if first_run else rate

    # -- composite formulas -----------------------------------------------------
    def cheetah_stream_seconds(self, entries: int, workers: int,
                               network_bps: float) -> float:
        """Time to move ``entries`` from workers through the switch.

        Serialization proceeds per worker in parallel; the shared network
        budget caps the aggregate — the binding constraint at 10G
        (§8.2.3).
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        serialize = entries / workers / self.worker_serialize_rate
        network = entries * self.bits_per_entry / network_bps
        return max(serialize, network)

    def master_blocking_seconds(self, op: str, total_entries: int,
                                forwarded_entries: int,
                                stream_seconds: float) -> float:
        """Figure 9's blocking latency: the backlog left when the stream
        ends, drained at the master's service rate.

        While the stream is live the master absorbs up to
        ``rate * stream_seconds`` entries; anything beyond buffers up —
        hence the super-linear growth once pruning is low.
        """
        rate = self.master_service_rate(op)
        absorbed = rate * stream_seconds
        backlog = max(0.0, forwarded_entries - absorbed)
        return backlog / rate

    def spark_completion(self, op: str, total_entries: int, workers: int,
                         result_entries: int,
                         first_run: bool = False) -> TimingBreakdown:
        """Spark completion time (compute-dominated; Fig. 8 left bars)."""
        task = total_entries / workers / self.spark_task_rate(op, first_run)
        network = (result_entries * self.spark_bits_per_entry
                   / self.spark_network_bps)
        merge = result_entries / self.spark_master_merge_rate
        overhead = (self.spark_first_run_overhead if first_run
                    else 0.0) + self.spark_setup_seconds
        return TimingBreakdown(computation=task + merge, network=network,
                               other=overhead)
