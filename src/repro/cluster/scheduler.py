"""Multi-tenant concurrent query serving over shared switches.

The §6 multi-query machinery (the :class:`~repro.core.multiquery.QueryPack`
slot model) exists because reprogramming a Tofino takes upwards of a
minute: many queries must share the scarce PISA pipeline concurrently.
This module drives that machinery at cluster scale.
:class:`QueryScheduler` admits N simultaneous tenants (each a named
scenario from the end-to-end suite), packs their compiled queries into
one *shared* switch frontend, and interleaves their packet streams
through a single event loop under loss and reordering — with every
tenant's result still identical to its solo ``QueryPlan.run``.

Scheduling model (specified in ``docs/SCHEDULER.md``):

* **Admission** — a tenant arrives at ``spec.arrival_tick`` and is
  admitted when a serving slot is free; with ``queue_when_full=False``
  it is rejected on arrival instead of waiting.  A tenant whose
  compiled query cannot be packed into the shared switch at all
  (``ResourceExhausted`` / ``CompilationError`` on its first install)
  is rejected with the packer's reason.
* **Resource arbitration** — every admitted tenant installs its query
  into the shared :class:`~repro.switch.controlplane.ControlPlane` (or
  :class:`~repro.cluster.runtime.ShardedSwitchFrontend`).  The pack
  validates the packed §6 footprint (stages max-combine; ALU, SRAM,
  TCAM, and metadata add) *and* the slot budget (``slots``, forwarded
  as the frontend's ``max_slots``) on each install; drivers uninstall
  the moment a pass group completes, releasing the slot to waiting
  tenants.
* **Fairness** — each global tick, every active tenant's in-flight wire
  pass advances exactly one protocol tick, and the service order
  *rotates* so no tenant systematically reaches the switch's
  ``offer_batch`` first.

Why interleaving is safe: every tenant's pruner state lives behind its
own flow id inside the pack (stateful queries never observe other
flows' packets), so the shared switch makes the same decisions it would
make solo; superset safety plus the §7.2 reliability protocol then give
result identity with the functional path regardless of loss, reorder,
shard count, or how tenants' batches interleave.  This is
property-tested in ``tests/test_scheduler.py`` and exercised by
``repro serve`` / ``repro bench concurrency``.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.runtime import ShardedSwitchFrontend
from repro.cluster.simulation import (
    ActiveTransfer,
    ClusterSimulation,
    PassStats,
    SimulationConfig,
    SimulationError,
    build_scenario,
)
from repro.db.executor import ExecutionResult
from repro.switch.compiler import CompilationError
from repro.switch.controlplane import ControlPlane
from repro.switch.resources import (
    ResourceExhausted,
    SwitchModel,
    TOFINO_MODEL,
)

#: Seed stride between tenants, decorrelating their channel RNG draws.
_TENANT_SEED_STRIDE = 1009

#: Default scenario mix ``repro serve`` / ``repro bench concurrency``
#: cycle through when assigning scenarios to tenants.
DEFAULT_TENANT_MIX = (
    "distinct", "filter", "topn", "groupby_max",
    "having_sum", "groupby_sum", "skyline", "join",
)


@dataclasses.dataclass(frozen=True)
class TenantSpec:
    """One tenant's request: a named scenario plus arrival time."""

    tenant: str
    scenario: str
    rows: int = 240
    seed: int = 0
    #: Global scheduler tick at which the tenant shows up (0 = start).
    arrival_tick: int = 0

    def __post_init__(self) -> None:
        if self.arrival_tick < 0:
            raise ValueError(
                f"arrival_tick must be >= 0, got {self.arrival_tick}"
            )


@dataclasses.dataclass
class SchedulerConfig:
    """Knobs of one multi-tenant serving run.

    ``slots`` is the concurrent-tenant budget, enforced twice: the
    scheduler never admits more tenants than slots, and the shared
    frontend's ``max_slots`` makes the data plane itself reject
    over-admission.  ``queue_when_full=False`` turns slot contention
    into admission rejection instead of queueing.  The remaining knobs
    mirror :class:`~repro.cluster.simulation.SimulationConfig` and are
    applied to every tenant.
    """

    slots: int = 4
    queue_when_full: bool = True
    workers: int = 4
    loss_rate: float = 0.0
    reorder_window: int = 0
    shards: int = 1
    seed: int = 0
    window: int = 32
    timeout_ticks: int = 8
    pipelined: bool = True
    max_ticks: int = 2_000_000
    switch: SwitchModel = TOFINO_MODEL

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")
        # Delegate range checks of the shared knobs: building a tenant
        # config validates workers/loss/reorder/shards/window.
        self.tenant_simulation_config(0)

    def tenant_simulation_config(self, index: int) -> SimulationConfig:
        """The :class:`SimulationConfig` tenant ``index`` runs under.

        Each tenant gets a decorrelated channel seed and a disjoint
        flow-id range (``fid_base``), so concurrent flows are globally
        distinguishable on the wire.  ``repro bench concurrency`` uses
        the same configs for its solo baselines, making solo-vs-shared
        latencies directly comparable.
        """
        return SimulationConfig(
            workers=self.workers,
            loss_rate=self.loss_rate,
            reorder_window=self.reorder_window,
            shards=self.shards,
            seed=self.seed + _TENANT_SEED_STRIDE * index,
            window=self.window,
            timeout_ticks=self.timeout_ticks,
            pipelined=self.pipelined,
            max_ticks=self.max_ticks,
            fid_base=index * (self.workers + self.shards),
        )


@dataclasses.dataclass
class TenantReport:
    """Outcome of one tenant's stay in the scheduler."""

    spec: TenantSpec
    #: ``served`` | ``rejected`` | ``failed`` (mid-run install error).
    status: str
    reason: str = ""
    result: Optional[ExecutionResult] = None
    #: ``result == QueryPlan.run(...)``; None when unchecked/unserved.
    equivalent: Optional[bool] = None
    admitted_tick: Optional[int] = None
    completed_tick: Optional[int] = None
    passes: List[PassStats] = dataclasses.field(default_factory=list)

    @property
    def wait_ticks(self) -> Optional[int]:
        """Ticks spent queued between arrival and admission."""
        if self.admitted_tick is None:
            return None
        return self.admitted_tick - self.spec.arrival_tick

    @property
    def service_ticks(self) -> Optional[int]:
        """Ticks between admission and completion."""
        if self.completed_tick is None or self.admitted_tick is None:
            return None
        return self.completed_tick - self.admitted_tick

    @property
    def entries(self) -> int:
        """Unique entries this tenant offered to the wire."""
        return sum(p.entries for p in self.passes)

    @property
    def delivered(self) -> int:
        """Entries of this tenant that reached the master."""
        return sum(p.delivered for p in self.passes)


@dataclasses.dataclass
class ScheduleReport:
    """Outcome of one :meth:`QueryScheduler.serve` run."""

    tenants: List[TenantReport]
    ticks: int
    wall_seconds: float
    slots: int
    shards: int
    loss_rate: float
    reorder_window: int

    @property
    def served(self) -> List[TenantReport]:
        """Tenants that completed service."""
        return [t for t in self.tenants if t.status == "served"]

    @property
    def rejected(self) -> List[TenantReport]:
        """Tenants turned away at admission."""
        return [t for t in self.tenants if t.status == "rejected"]

    @property
    def all_equivalent(self) -> Optional[bool]:
        """Every served tenant matched its solo ``QueryPlan.run``
        (None when serving ran with ``check=False``)."""
        verdicts = [t.equivalent for t in self.served]
        if not verdicts or any(v is None for v in verdicts):
            return None
        return all(verdicts)

    @property
    def entries(self) -> int:
        """Unique entries offered to the wire across served tenants."""
        return sum(t.entries for t in self.served)

    @property
    def delivered(self) -> int:
        """Entries delivered to masters across served tenants."""
        return sum(t.delivered for t in self.served)

    @property
    def throughput_entries_per_second(self) -> Optional[float]:
        """Aggregate serving throughput: offered entries / makespan."""
        if self.wall_seconds <= 0:
            return None
        return self.entries / self.wall_seconds


class _TenantRun:
    """Internal per-tenant state machine (spec -> driver -> report)."""

    def __init__(self, spec: TenantSpec, index: int,
                 config: SchedulerConfig, frontend: Any):
        self.spec = spec
        self.index = index
        self.status = "queued"
        self.reason = ""
        self.result: Optional[ExecutionResult] = None
        self.reference: Optional[ExecutionResult] = None
        self.equivalent: Optional[bool] = None
        self.admitted_tick: Optional[int] = None
        self.completed_tick: Optional[int] = None
        self.passes: List[PassStats] = []
        self.current: Optional[ActiveTransfer] = None
        self._delivered = None
        self.sim = ClusterSimulation(
            config.tenant_simulation_config(index),
            frontend_factory=lambda: frontend,
        )
        self.gen = None
        self.query = None
        self.tables = None

    def prepare(self) -> None:
        """Materialize the tenant's scenario.  Runs before the serving
        clock starts, so dataset construction is not billed to the
        makespan (the solo baselines exclude it the same way)."""
        self.query, self.tables = build_scenario(self.spec.scenario,
                                                 rows=self.spec.rows,
                                                 seed=self.spec.seed)

    def admit(self, tick: int) -> None:
        """Start the tenant's driver (installing its query — this is
        where ``ResourceExhausted`` surfaces as admission rejection)."""
        self.gen = self.sim.query_generator(self.query, self.tables)
        self._advance(None)
        self.status = "admitted"
        self.admitted_tick = tick

    def _advance(self, value) -> bool:
        """Resume the driver; start its next pass or capture the result."""
        try:
            request = self.gen.send(value)
        except StopIteration as stop:
            self.result = stop.value
            self.current = None
            return False
        self.current = self.sim.begin_transfer(request)
        return True

    def finish_pass(self) -> None:
        """Record the completed pass and stash its delivered entries."""
        self.passes.append(self.current.stats())
        self._delivered = self.current.delivered()

    def advance(self) -> bool:
        """Feed the finished pass back to the driver; True while the
        tenant still has wire passes to run."""
        delivered, self._delivered = self._delivered, None
        return self._advance(delivered)

    def complete(self, tick: int) -> None:
        self.status = "served"
        self.completed_tick = tick

    def evaluate(self) -> None:
        """Compare against the functional ``QueryPlan.run`` reference.
        Runs after the serving clock stops — verification work must not
        skew the reported makespan (the solo ``ClusterSimulation.run``
        likewise keeps its reference outside ``wall_seconds``)."""
        if self.status != "served":
            return
        self.reference = (self.sim.planner.plan(self.query)
                          .run(self.tables).result)
        self.equivalent = self.result == self.reference

    def reject(self, reason: str) -> None:
        self.status = "rejected"
        self.reason = reason

    def fail(self, reason: str, tick: int) -> None:
        self.status = "failed"
        self.reason = reason
        self.completed_tick = tick

    def report(self) -> TenantReport:
        return TenantReport(
            spec=self.spec, status=self.status, reason=self.reason,
            result=self.result, equivalent=self.equivalent,
            admitted_tick=self.admitted_tick,
            completed_tick=self.completed_tick, passes=self.passes,
        )


class QueryScheduler:
    """Serve many concurrent tenants through one shared switch frontend.

    ``serve(tenants)`` runs the admission + interleaving loop described
    in the module docstring and returns a :class:`ScheduleReport` whose
    per-tenant results are (by construction, and checked when
    ``check=True``) identical to each tenant's solo ``QueryPlan.run``.
    """

    def __init__(self, config: Optional[SchedulerConfig] = None):
        self.config = config or SchedulerConfig()

    def _build_frontend(self):
        """The shared data plane every tenant installs into."""
        cfg = self.config
        if cfg.shards > 1:
            return ShardedSwitchFrontend(cfg.switch, cfg.shards,
                                         seed=cfg.seed,
                                         max_slots=cfg.slots)
        return ControlPlane(cfg.switch, seed=cfg.seed,
                            max_slots=cfg.slots)

    def serve(self, tenants: Sequence[TenantSpec],
              check: bool = True) -> ScheduleReport:
        """Admit, arbitrate, and interleave ``tenants`` to completion.

        With ``check=True`` (default) each tenant's scenario is also
        executed functionally via ``QueryPlan.run`` and compared;
        ``TenantReport.equivalent`` records the verdict.
        """
        cfg = self.config
        if not tenants:
            raise ValueError("serve needs at least one tenant")
        names = [spec.tenant for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        frontend = self._build_frontend()
        runs = [_TenantRun(spec, index, cfg, frontend)
                for index, spec in enumerate(tenants)]
        for run in runs:
            run.prepare()
        pending = sorted(runs, key=lambda r: (r.spec.arrival_tick, r.index))
        waiting: List[_TenantRun] = []
        active: List[_TenantRun] = []
        finished: List[_TenantRun] = []
        tick = 0
        start = time.perf_counter()
        while pending or waiting or active:
            while pending and pending[0].spec.arrival_tick <= tick:
                waiting.append(pending.pop(0))
            still_waiting: List[_TenantRun] = []
            for run in waiting:
                if len(active) >= cfg.slots:
                    if cfg.queue_when_full:
                        still_waiting.append(run)
                    else:
                        run.reject(f"no free slot: all {cfg.slots} "
                                   "serving slots busy at arrival")
                        finished.append(run)
                    continue
                try:
                    run.admit(tick)
                except (ResourceExhausted, CompilationError) as error:
                    run.reject(str(error))
                    finished.append(run)
                    continue
                if run.current is None:
                    run.complete(tick)
                    finished.append(run)
                else:
                    active.append(run)
            waiting = still_waiting
            if not active:
                if pending:
                    # Idle until the next arrival.
                    tick = max(tick + 1, pending[0].spec.arrival_tick)
                    continue
                break
            tick += 1
            if tick > cfg.max_ticks:
                raise SimulationError(
                    f"serving did not complete within {cfg.max_ticks} "
                    "global ticks (protocol livelock?)"
                )
            # Fairness: rotate which tenant's pass is serviced (and
            # therefore whose offer_batch the switch sees) first.
            offset = tick % len(active)
            done_runs: List[_TenantRun] = []
            for run in active[offset:] + active[:offset]:
                run.current.step()
                if not run.current.done:
                    continue
                run.finish_pass()
                try:
                    more = run.advance()
                except (ResourceExhausted, CompilationError) as error:
                    run.fail(f"mid-run install failed: {error}", tick)
                    done_runs.append(run)
                    continue
                if not more:
                    run.complete(tick)
                    done_runs.append(run)
            for run in done_runs:
                active.remove(run)
                finished.append(run)
        wall = time.perf_counter() - start
        if check:
            for run in finished:
                run.evaluate()
        finished.sort(key=lambda r: r.index)
        return ScheduleReport(
            tenants=[run.report() for run in finished],
            ticks=tick,
            wall_seconds=wall,
            slots=cfg.slots,
            shards=cfg.shards,
            loss_rate=cfg.loss_rate,
            reorder_window=cfg.reorder_window,
        )


def tenant_specs(count: int, rows: int = 240, seed: int = 0,
                 mix: Sequence[str] = DEFAULT_TENANT_MIX,
                 arrival_stride: int = 0) -> List[TenantSpec]:
    """``count`` tenant specs cycling through ``mix``; tenant ``i``
    arrives at ``i * arrival_stride`` (0 = everyone at start).  Shared
    by ``repro serve`` and the concurrency benchmark."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if not mix:
        raise ValueError("scenario mix must not be empty")
    return [
        TenantSpec(tenant=f"tenant-{i}", scenario=mix[i % len(mix)],
                   rows=rows, seed=seed + i,
                   arrival_tick=i * arrival_stride)
        for i in range(count)
    ]
