"""Multi-tenant concurrent query serving over shared switches.

The §6 multi-query machinery (the :class:`~repro.core.multiquery.QueryPack`
slot model) exists because reprogramming a Tofino takes upwards of a
minute: many queries must share the scarce PISA pipeline concurrently.
This module drives that machinery at cluster scale.
:class:`QueryScheduler` admits N simultaneous tenants (each a named
scenario from the end-to-end suite), packs their compiled queries into
one *shared* switch frontend, and interleaves their packet streams
through a single event loop under loss and reordering — with every
tenant's result still identical to its solo ``QueryPlan.run``.

Scheduling model (specified in ``docs/SCHEDULER.md``):

* **Admission** — a tenant arrives at ``spec.arrival_tick`` and is
  admitted when a serving slot is free; with ``queue_when_full=False``
  it is rejected on arrival instead of waiting.  A tenant whose
  compiled query cannot be packed into the shared switch at all
  (``ResourceExhausted`` / ``CompilationError`` on its first install)
  is rejected with the packer's reason.
* **Resource arbitration** — every admitted tenant installs its query
  into the shared :class:`~repro.switch.controlplane.ControlPlane` (or
  :class:`~repro.cluster.runtime.ShardedSwitchFrontend`).  The pack
  validates the packed §6 footprint (stages max-combine; ALU, SRAM,
  TCAM, and metadata add) *and* the slot budget (``slots``, forwarded
  as the frontend's ``max_slots``) on each install; drivers uninstall
  the moment a pass group completes, releasing the slot to waiting
  tenants.
* **Fairness** — each global tick, every active tenant's in-flight wire
  pass advances exactly one protocol tick, and the service order
  *rotates* so no tenant systematically reaches the switch's
  ``offer_batch`` first.

Why interleaving is safe: every tenant's pruner state lives behind its
own flow id inside the pack (stateful queries never observe other
flows' packets), so the shared switch makes the same decisions it would
make solo; superset safety plus the §7.2 reliability protocol then give
result identity with the functional path regardless of loss, reorder,
shard count, or how tenants' batches interleave.  This is
property-tested in ``tests/test_scheduler.py`` and exercised by
``repro serve`` / ``repro bench concurrency``.

Every ``serve`` run additionally collects :class:`SchedulerTelemetry`
— a per-tick probe of slot occupancy, queue depth, and admission
outcomes — from which :class:`ScheduleReport` derives p50/p95/p99
arrival-to-completion latency, mean/peak occupancy, and the rejection
timeline.  :func:`replay_trace` feeds a recorded arrival trace
(``repro.workloads.traces``, see ``docs/TRACES.md``) through the same
loop: that is the ``repro replay`` / ``repro bench replay`` surface,
where tail latency under Poisson, bursty, and diurnal arrivals is the
measured claim.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.runtime import ShardedSwitchFrontend
from repro.cluster.simulation import (
    ActiveTransfer,
    ClusterSimulation,
    PassStats,
    SimulationConfig,
    SimulationError,
    build_scenario,
)
from repro.db.executor import ExecutionResult
from repro.switch.compiler import CompilationError
from repro.switch.controlplane import ControlPlane
from repro.switch.resources import (
    ResourceExhausted,
    SwitchModel,
    TOFINO_MODEL,
)

#: Seed stride between tenants, decorrelating their channel RNG draws.
_TENANT_SEED_STRIDE = 1009

#: Default scenario mix ``repro serve`` / ``repro bench concurrency``
#: cycle through when assigning scenarios to tenants.
DEFAULT_TENANT_MIX = (
    "distinct", "filter", "topn", "groupby_max",
    "having_sum", "groupby_sum", "skyline", "join",
)


@dataclasses.dataclass(frozen=True)
class TenantSpec:
    """One tenant's request: a named scenario plus arrival time."""

    tenant: str
    scenario: str
    rows: int = 240
    seed: int = 0
    #: Global scheduler tick at which the tenant shows up (0 = start).
    arrival_tick: int = 0

    def __post_init__(self) -> None:
        if self.arrival_tick < 0:
            raise ValueError(
                f"arrival_tick must be >= 0, got {self.arrival_tick}"
            )


@dataclasses.dataclass
class SchedulerConfig:
    """Knobs of one multi-tenant serving run.

    ``slots`` is the concurrent-tenant budget, enforced twice: the
    scheduler never admits more tenants than slots, and the shared
    frontend's ``max_slots`` makes the data plane itself reject
    over-admission.  ``queue_when_full=False`` turns slot contention
    into admission rejection instead of queueing.  The remaining knobs
    mirror :class:`~repro.cluster.simulation.SimulationConfig` and are
    applied to every tenant.
    """

    slots: int = 4
    queue_when_full: bool = True
    workers: int = 4
    loss_rate: float = 0.0
    reorder_window: int = 0
    shards: int = 1
    seed: int = 0
    window: int = 32
    timeout_ticks: int = 8
    pipelined: bool = True
    max_ticks: int = 2_000_000
    switch: SwitchModel = TOFINO_MODEL

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")
        # Delegate range checks of the shared knobs: building a tenant
        # config validates workers/loss/reorder/shards/window.
        self.tenant_simulation_config(0)

    def tenant_simulation_config(self, index: int) -> SimulationConfig:
        """The :class:`SimulationConfig` tenant ``index`` runs under.

        Each tenant gets a decorrelated channel seed and a disjoint
        flow-id range (``fid_base``), so concurrent flows are globally
        distinguishable on the wire.  ``repro bench concurrency`` uses
        the same configs for its solo baselines, making solo-vs-shared
        latencies directly comparable.
        """
        return SimulationConfig(
            workers=self.workers,
            loss_rate=self.loss_rate,
            reorder_window=self.reorder_window,
            shards=self.shards,
            seed=self.seed + _TENANT_SEED_STRIDE * index,
            window=self.window,
            timeout_ticks=self.timeout_ticks,
            pipelined=self.pipelined,
            max_ticks=self.max_ticks,
            fid_base=index * (self.workers + self.shards),
        )


def _percentile(values: Sequence[int], fraction: float) -> int:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


@dataclasses.dataclass(frozen=True)
class TelemetrySample:
    """One per-tick probe of the serving loop.

    ``occupancy`` counts the tenants whose in-flight passes the loop
    stepped during this tick; ``queue_depth`` the tenants waiting for
    a slot.  The three counters record events stamped with *exactly*
    this tick, so they correlate one-to-one with
    ``TenantReport.admitted_tick`` / ``completed_tick`` and
    ``RejectionEvent.tick`` (admissions happen between service steps:
    a tenant admitted at tick ``t`` first advances — and is first
    counted in ``occupancy`` — at ``t + 1``).  Ticks where nothing
    happened (the scheduler idling toward a far-future arrival)
    produce no sample; their occupancy is zero by construction.
    """

    tick: int
    occupancy: int
    queue_depth: int
    admitted: int
    completed: int
    rejected: int


@dataclasses.dataclass(frozen=True)
class RejectionEvent:
    """One admission rejection: when, who, and the packer's reason."""

    tick: int
    tenant: str
    reason: str


@dataclasses.dataclass
class SchedulerTelemetry:
    """Per-tick probe data collected by :meth:`QueryScheduler.serve`.

    The samples are the raw occupancy/queue/admission time series;
    :class:`ScheduleReport` derives the headline latency percentiles
    and occupancy statistics from them.  ``occupancy_timeline``
    downsamples the series into a bounded number of buckets for
    rendering (bench JSON, ``docs/RESULTS.md``).
    """

    slots: int
    samples: List[TelemetrySample] = dataclasses.field(
        default_factory=list)
    rejections: List[RejectionEvent] = dataclasses.field(
        default_factory=list)

    @property
    def peak_occupancy(self) -> int:
        """Most slots simultaneously held during any sampled tick."""
        return max((s.occupancy for s in self.samples), default=0)

    @property
    def peak_queue_depth(self) -> int:
        """Deepest the admission queue ever got."""
        return max((s.queue_depth for s in self.samples), default=0)

    def occupancy_integral(self) -> int:
        """Sum of occupancy over sampled ticks (slot-ticks of service).
        Unsampled (idle) ticks contribute zero, so dividing by the
        makespan gives the time-weighted mean occupancy."""
        return sum(s.occupancy for s in self.samples)

    def occupancy_timeline(self, buckets: int = 24) -> List[Dict]:
        """The occupancy series downsampled to at most ``buckets``
        equal-width tick ranges: per bucket the mean/max occupancy and
        max queue depth.  Deterministic; empty when nothing ran."""
        if not self.samples or buckets < 1:
            return []
        span = self.samples[-1].tick
        width = max(1, math.ceil(span / buckets))
        timeline: List[Dict] = []
        grouped: Dict[int, List[TelemetrySample]] = {}
        for sample in self.samples:
            grouped.setdefault(max(sample.tick - 1, 0) // width,
                               []).append(sample)
        for index in sorted(grouped):
            bucket = grouped[index]
            # Mean over the *bucket width*: unsampled ticks are idle.
            ticks_in_bucket = min(width, span - index * width)
            timeline.append({
                "until_tick": min((index + 1) * width, span),
                "mean_occupancy": round(
                    sum(s.occupancy for s in bucket)
                    / max(ticks_in_bucket, 1), 4),
                "max_occupancy": max(s.occupancy for s in bucket),
                "max_queue_depth": max(s.queue_depth for s in bucket),
            })
        return timeline


@dataclasses.dataclass
class TenantReport:
    """Outcome of one tenant's stay in the scheduler."""

    spec: TenantSpec
    #: ``served`` | ``rejected`` | ``failed`` (mid-run install error).
    status: str
    reason: str = ""
    result: Optional[ExecutionResult] = None
    #: ``result == QueryPlan.run(...)``; None when unchecked/unserved.
    equivalent: Optional[bool] = None
    admitted_tick: Optional[int] = None
    completed_tick: Optional[int] = None
    passes: List[PassStats] = dataclasses.field(default_factory=list)

    @property
    def wait_ticks(self) -> Optional[int]:
        """Ticks spent queued between arrival and admission."""
        if self.admitted_tick is None:
            return None
        return self.admitted_tick - self.spec.arrival_tick

    @property
    def service_ticks(self) -> Optional[int]:
        """Ticks between admission and completion."""
        if self.completed_tick is None or self.admitted_tick is None:
            return None
        return self.completed_tick - self.admitted_tick

    @property
    def latency_ticks(self) -> Optional[int]:
        """End-to-end latency the tenant observed: arrival (not
        admission) to completion, so queueing delay is included."""
        if self.completed_tick is None or self.status != "served":
            return None
        return self.completed_tick - self.spec.arrival_tick

    @property
    def entries(self) -> int:
        """Unique entries this tenant offered to the wire."""
        return sum(p.entries for p in self.passes)

    @property
    def delivered(self) -> int:
        """Entries of this tenant that reached the master."""
        return sum(p.delivered for p in self.passes)


@dataclasses.dataclass
class ScheduleReport:
    """Outcome of one :meth:`QueryScheduler.serve` run."""

    tenants: List[TenantReport]
    ticks: int
    wall_seconds: float
    slots: int
    shards: int
    loss_rate: float
    reorder_window: int
    telemetry: Optional[SchedulerTelemetry] = None

    @property
    def served(self) -> List[TenantReport]:
        """Tenants that completed service."""
        return [t for t in self.tenants if t.status == "served"]

    @property
    def rejected(self) -> List[TenantReport]:
        """Tenants turned away at admission."""
        return [t for t in self.tenants if t.status == "rejected"]

    @property
    def all_equivalent(self) -> Optional[bool]:
        """Every served tenant matched its solo ``QueryPlan.run``
        (None when serving ran with ``check=False``)."""
        verdicts = [t.equivalent for t in self.served]
        if not verdicts or any(v is None for v in verdicts):
            return None
        return all(verdicts)

    @property
    def entries(self) -> int:
        """Unique entries offered to the wire across served tenants."""
        return sum(t.entries for t in self.served)

    @property
    def delivered(self) -> int:
        """Entries delivered to masters across served tenants."""
        return sum(t.delivered for t in self.served)

    @property
    def throughput_entries_per_second(self) -> Optional[float]:
        """Aggregate serving throughput: offered entries / makespan.
        ``None`` when nothing was served (empty trace, every tenant
        rejected) or the clock recorded no elapsed time — a replay with
        zero served ticks must not divide by zero."""
        if self.wall_seconds <= 0 or not self.served:
            return None
        return self.entries / self.wall_seconds

    @property
    def throughput_entries_per_tick(self) -> Optional[float]:
        """Deterministic throughput: offered entries / makespan ticks
        (``None`` when the replay served zero ticks)."""
        if self.ticks <= 0 or not self.served:
            return None
        return self.entries / self.ticks

    @property
    def latencies(self) -> List[int]:
        """Per-tenant arrival-to-completion latencies (served only),
        in report order."""
        return [t.latency_ticks for t in self.served
                if t.latency_ticks is not None]

    def latency_percentile(self, fraction: float) -> Optional[int]:
        """Nearest-rank latency percentile in ticks; ``None`` when no
        tenant was served (never a division by zero)."""
        values = self.latencies
        if not values:
            return None
        return _percentile(values, fraction)

    @property
    def latency_p50_ticks(self) -> Optional[int]:
        """Median arrival-to-completion latency."""
        return self.latency_percentile(0.50)

    @property
    def latency_p95_ticks(self) -> Optional[int]:
        """95th-percentile arrival-to-completion latency."""
        return self.latency_percentile(0.95)

    @property
    def latency_p99_ticks(self) -> Optional[int]:
        """99th-percentile (tail) arrival-to-completion latency."""
        return self.latency_percentile(0.99)

    @property
    def mean_occupancy(self) -> Optional[float]:
        """Time-weighted mean slot occupancy over the makespan
        (idle ticks count as zero); ``None`` without telemetry or when
        zero ticks were served."""
        if self.telemetry is None or self.ticks <= 0:
            return None
        return self.telemetry.occupancy_integral() / self.ticks

    @property
    def peak_occupancy(self) -> Optional[int]:
        """Most slots simultaneously held; ``None`` without telemetry."""
        if self.telemetry is None:
            return None
        return self.telemetry.peak_occupancy

    @property
    def rejection_timeline(self) -> List[RejectionEvent]:
        """Admission rejections in tick order (empty without
        telemetry)."""
        if self.telemetry is None:
            return []
        return list(self.telemetry.rejections)

    def to_payload(self) -> Dict:
        """The report as a deterministic, JSON-serializable dict.

        Everything here is a pure function of the tenant specs, the
        config, and the seeds — wall-clock time is deliberately
        excluded, so replaying the same trace with the same seed yields
        a byte-identical ``json.dumps(report.to_payload(),
        sort_keys=True)``.  ``repro bench replay`` and the determinism
        property test both rely on this.
        """
        mean_occupancy = self.mean_occupancy
        return {
            "slots": self.slots,
            "shards": self.shards,
            "loss_rate": self.loss_rate,
            "reorder_window": self.reorder_window,
            "ticks": self.ticks,
            "served": len(self.served),
            "rejected": len(self.rejected),
            "all_equivalent": self.all_equivalent,
            "entries": self.entries,
            "delivered": self.delivered,
            "throughput_entries_per_tick":
                self.throughput_entries_per_tick,
            "latency": {
                "p50_ticks": self.latency_p50_ticks,
                "p95_ticks": self.latency_p95_ticks,
                "p99_ticks": self.latency_p99_ticks,
                "mean_ticks": (sum(self.latencies) / len(self.latencies)
                               if self.latencies else None),
                "max_ticks": (max(self.latencies)
                              if self.latencies else None),
            },
            "occupancy": {
                "mean": (None if mean_occupancy is None
                         else round(mean_occupancy, 4)),
                "peak": self.peak_occupancy,
                "peak_queue_depth": (None if self.telemetry is None
                                     else self.telemetry.peak_queue_depth),
                "timeline": ([] if self.telemetry is None
                             else self.telemetry.occupancy_timeline()),
            },
            "rejections": [
                {"tick": event.tick, "tenant": event.tenant,
                 "reason": event.reason}
                for event in self.rejection_timeline
            ],
            "tenants": [
                {
                    "tenant": t.spec.tenant,
                    "scenario": t.spec.scenario,
                    "rows": t.spec.rows,
                    "seed": t.spec.seed,
                    "arrival_tick": t.spec.arrival_tick,
                    "status": t.status,
                    "reason": t.reason,
                    "admitted_tick": t.admitted_tick,
                    "completed_tick": t.completed_tick,
                    "wait_ticks": t.wait_ticks,
                    "service_ticks": t.service_ticks,
                    "latency_ticks": t.latency_ticks,
                    "entries": t.entries,
                    "delivered": t.delivered,
                    "equivalent": t.equivalent,
                }
                for t in self.tenants
            ],
        }


class _TenantRun:
    """Internal per-tenant state machine (spec -> driver -> report)."""

    def __init__(self, spec: TenantSpec, index: int,
                 config: SchedulerConfig, frontend: Any):
        self.spec = spec
        self.index = index
        self.status = "queued"
        self.reason = ""
        self.result: Optional[ExecutionResult] = None
        self.reference: Optional[ExecutionResult] = None
        self.equivalent: Optional[bool] = None
        self.admitted_tick: Optional[int] = None
        self.completed_tick: Optional[int] = None
        self.passes: List[PassStats] = []
        self.current: Optional[ActiveTransfer] = None
        self._delivered = None
        self.sim = ClusterSimulation(
            config.tenant_simulation_config(index),
            frontend_factory=lambda: frontend,
        )
        self.gen = None
        self.query = None
        self.tables = None

    def prepare(self) -> None:
        """Materialize the tenant's scenario.  Runs before the serving
        clock starts, so dataset construction is not billed to the
        makespan (the solo baselines exclude it the same way)."""
        self.query, self.tables = build_scenario(self.spec.scenario,
                                                 rows=self.spec.rows,
                                                 seed=self.spec.seed)

    def admit(self, tick: int) -> None:
        """Start the tenant's driver (installing its query — this is
        where ``ResourceExhausted`` surfaces as admission rejection)."""
        self.gen = self.sim.query_generator(self.query, self.tables)
        self._advance(None)
        self.status = "admitted"
        self.admitted_tick = tick

    def _advance(self, value) -> bool:
        """Resume the driver; start its next pass or capture the result."""
        try:
            request = self.gen.send(value)
        except StopIteration as stop:
            self.result = stop.value
            self.current = None
            return False
        self.current = self.sim.begin_transfer(request)
        return True

    def finish_pass(self) -> None:
        """Record the completed pass and stash its delivered entries."""
        self.passes.append(self.current.stats())
        self._delivered = self.current.delivered()

    def advance(self) -> bool:
        """Feed the finished pass back to the driver; True while the
        tenant still has wire passes to run."""
        delivered, self._delivered = self._delivered, None
        return self._advance(delivered)

    def complete(self, tick: int) -> None:
        self.status = "served"
        self.completed_tick = tick

    def evaluate(self) -> None:
        """Compare against the functional ``QueryPlan.run`` reference.
        Runs after the serving clock stops — verification work must not
        skew the reported makespan (the solo ``ClusterSimulation.run``
        likewise keeps its reference outside ``wall_seconds``)."""
        if self.status != "served":
            return
        self.reference = (self.sim.planner.plan(self.query)
                          .run(self.tables).result)
        self.equivalent = self.result == self.reference

    def reject(self, reason: str) -> None:
        self.status = "rejected"
        self.reason = reason

    def fail(self, reason: str, tick: int) -> None:
        self.status = "failed"
        self.reason = reason
        self.completed_tick = tick

    def report(self) -> TenantReport:
        return TenantReport(
            spec=self.spec, status=self.status, reason=self.reason,
            result=self.result, equivalent=self.equivalent,
            admitted_tick=self.admitted_tick,
            completed_tick=self.completed_tick, passes=self.passes,
        )


class QueryScheduler:
    """Serve many concurrent tenants through one shared switch frontend.

    ``serve(tenants)`` runs the admission + interleaving loop described
    in the module docstring and returns a :class:`ScheduleReport` whose
    per-tenant results are (by construction, and checked when
    ``check=True``) identical to each tenant's solo ``QueryPlan.run``.
    """

    def __init__(self, config: Optional[SchedulerConfig] = None):
        self.config = config or SchedulerConfig()

    def _build_frontend(self):
        """The shared data plane every tenant installs into."""
        cfg = self.config
        if cfg.shards > 1:
            return ShardedSwitchFrontend(cfg.switch, cfg.shards,
                                         seed=cfg.seed,
                                         max_slots=cfg.slots)
        return ControlPlane(cfg.switch, seed=cfg.seed,
                            max_slots=cfg.slots)

    def serve(self, tenants: Sequence[TenantSpec],
              check: bool = True) -> ScheduleReport:
        """Admit, arbitrate, and interleave ``tenants`` to completion.

        With ``check=True`` (default) each tenant's scenario is also
        executed functionally via ``QueryPlan.run`` and compared;
        ``TenantReport.equivalent`` records the verdict.
        """
        cfg = self.config
        if not tenants:
            raise ValueError("serve needs at least one tenant")
        names = [spec.tenant for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        frontend = self._build_frontend()
        runs = [_TenantRun(spec, index, cfg, frontend)
                for index, spec in enumerate(tenants)]
        for run in runs:
            run.prepare()
        pending = sorted(runs, key=lambda r: (r.spec.arrival_tick, r.index))
        waiting: List[_TenantRun] = []
        active: List[_TenantRun] = []
        finished: List[_TenantRun] = []
        telemetry = SchedulerTelemetry(slots=cfg.slots)
        # Per-tick probe bookkeeping, keyed by the *exact* tick each
        # event is stamped with (admissions happen between service
        # steps, so an iteration's admission events and its service
        # step carry different ticks): tick -> [admitted, completed,
        # rejected], tick -> (occupancy, queue_depth), tick ->
        # queue depth after an admission phase.
        counts: Dict[int, List[int]] = {}
        service: Dict[int, tuple] = {}
        queue_at: Dict[int, int] = {}

        def bump(at: int, slot: int) -> None:
            counts.setdefault(at, [0, 0, 0])[slot] += 1

        tick = 0
        start = time.perf_counter()
        while pending or waiting or active:
            while pending and pending[0].spec.arrival_tick <= tick:
                waiting.append(pending.pop(0))
            still_waiting: List[_TenantRun] = []
            for run in waiting:
                if len(active) >= cfg.slots:
                    if cfg.queue_when_full:
                        still_waiting.append(run)
                    else:
                        run.reject(f"no free slot: all {cfg.slots} "
                                   "serving slots busy at arrival")
                        telemetry.rejections.append(RejectionEvent(
                            tick, run.spec.tenant, run.reason))
                        bump(tick, 2)
                        finished.append(run)
                    continue
                try:
                    run.admit(tick)
                except (ResourceExhausted, CompilationError) as error:
                    run.reject(str(error))
                    telemetry.rejections.append(RejectionEvent(
                        tick, run.spec.tenant, run.reason))
                    bump(tick, 2)
                    finished.append(run)
                    continue
                bump(tick, 0)
                if run.current is None:
                    run.complete(tick)
                    bump(tick, 1)
                    finished.append(run)
                else:
                    active.append(run)
            waiting = still_waiting
            if tick in counts:
                queue_at[tick] = len(waiting)
            if not active:
                if pending:
                    # Idle until the next arrival.
                    tick = max(tick + 1, pending[0].spec.arrival_tick)
                    continue
                break
            tick += 1
            if tick > cfg.max_ticks:
                raise SimulationError(
                    f"serving did not complete within {cfg.max_ticks} "
                    "global ticks (protocol livelock?)"
                )
            # Fairness: rotate which tenant's pass is serviced (and
            # therefore whose offer_batch the switch sees) first.
            offset = tick % len(active)
            done_runs: List[_TenantRun] = []
            for run in active[offset:] + active[:offset]:
                run.current.step()
                if not run.current.done:
                    continue
                run.finish_pass()
                try:
                    more = run.advance()
                except (ResourceExhausted, CompilationError) as error:
                    run.fail(f"mid-run install failed: {error}", tick)
                    done_runs.append(run)
                    continue
                if not more:
                    run.complete(tick)
                    bump(tick, 1)
                    done_runs.append(run)
            service[tick] = (len(active), len(waiting))
            for run in done_runs:
                active.remove(run)
                finished.append(run)
        wall = time.perf_counter() - start
        for sample_tick in sorted(set(counts) | set(service)):
            occupancy, queue_depth = service.get(
                sample_tick, (0, queue_at.get(sample_tick, 0)))
            admitted, completed, rejected = counts.get(sample_tick,
                                                       (0, 0, 0))
            telemetry.samples.append(TelemetrySample(
                tick=sample_tick, occupancy=occupancy,
                queue_depth=queue_depth, admitted=admitted,
                completed=completed, rejected=rejected))
        if check:
            for run in finished:
                run.evaluate()
        finished.sort(key=lambda r: r.index)
        return ScheduleReport(
            tenants=[run.report() for run in finished],
            ticks=tick,
            wall_seconds=wall,
            slots=cfg.slots,
            shards=cfg.shards,
            loss_rate=cfg.loss_rate,
            reorder_window=cfg.reorder_window,
            telemetry=telemetry,
        )


def tenant_specs(count: int, rows: int = 240, seed: int = 0,
                 mix: Sequence[str] = DEFAULT_TENANT_MIX,
                 arrival_stride: int = 0) -> List[TenantSpec]:
    """``count`` tenant specs cycling through ``mix``; tenant ``i``
    arrives at ``i * arrival_stride`` (0 = everyone at start).  Shared
    by ``repro serve`` and the concurrency benchmark."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if not mix:
        raise ValueError("scenario mix must not be empty")
    return [
        TenantSpec(tenant=f"tenant-{i}", scenario=mix[i % len(mix)],
                   rows=rows, seed=seed + i,
                   arrival_tick=i * arrival_stride)
        for i in range(count)
    ]


def replay_trace(trace, config: Optional[SchedulerConfig] = None,
                 check: bool = True,
                 apply_overrides: bool = True) -> ScheduleReport:
    """Replay a recorded arrival trace through the scheduler.

    ``trace`` is a :class:`repro.workloads.traces.Trace` (from
    :func:`~repro.workloads.traces.load_trace` or
    :func:`~repro.workloads.traces.generate_trace`).  With
    ``apply_overrides=True`` (default) the trace header's
    ``loss_rate``/``shards`` replace the config's values — a recorded
    trace pins its network conditions; pass ``False`` when the caller
    (e.g. an explicit CLI flag) has already resolved them.

    An empty trace is a valid replay: the result is a zero-tick
    :class:`ScheduleReport` with no tenants, ``None`` latency
    percentiles and throughput, and empty telemetry — never a division
    by zero.
    """
    config = config or SchedulerConfig()
    if apply_overrides:
        overrides = {}
        if trace.loss_rate is not None:
            overrides["loss_rate"] = trace.loss_rate
        if trace.shards is not None:
            overrides["shards"] = trace.shards
        if overrides:
            config = dataclasses.replace(config, **overrides)
    specs = trace.tenant_specs()
    if not specs:
        return ScheduleReport(
            tenants=[], ticks=0, wall_seconds=0.0, slots=config.slots,
            shards=config.shards, loss_rate=config.loss_rate,
            reorder_window=config.reorder_window,
            telemetry=SchedulerTelemetry(slots=config.slots),
        )
    return QueryScheduler(config).serve(specs, check=check)
