"""Multi-tenant concurrent query serving over shared switches.

The §6 multi-query machinery (the :class:`~repro.core.multiquery.QueryPack`
slot model) exists because reprogramming a Tofino takes upwards of a
minute: many queries must share the scarce PISA pipeline concurrently.
This module drives that machinery at cluster scale.
:class:`QueryScheduler` admits N simultaneous tenants (each a named
scenario from the end-to-end suite), packs their compiled queries into
one *shared* switch frontend, and interleaves their packet streams
through a single event loop under loss and reordering — with every
tenant's result still identical to its solo ``QueryPlan.run``.

Scheduling model (specified in ``docs/SCHEDULER.md``):

* **Admission** — a tenant arrives at ``spec.arrival_tick`` and is
  admitted when a serving slot is free; with ``queue_when_full=False``
  it is rejected on arrival instead of waiting.  A tenant whose
  compiled query cannot be packed into the shared switch at all
  (``ResourceExhausted`` / ``CompilationError`` on its first install)
  is rejected with the packer's reason.
* **Resource arbitration** — every admitted tenant installs its query
  into the shared :class:`~repro.switch.controlplane.ControlPlane` (or
  :class:`~repro.cluster.runtime.ShardedSwitchFrontend`).  The pack
  validates the packed §6 footprint (stages max-combine; ALU, SRAM,
  TCAM, and metadata add) *and* the slot budget (``slots``, forwarded
  as the frontend's ``max_slots``) on each install; drivers uninstall
  the moment a pass group completes, releasing the slot to waiting
  tenants.
* **QoS** (``docs/QOS.md``) — every admission and service decision
  consults the configured :class:`~repro.cluster.qos.QosPolicy`:
  waiting tenants are admitted highest class priority first, slot
  *reservations* hold floors per class, and (when enabled) an arriving
  strictly-higher-priority tenant may *preempt* a preemptible tenant
  mid-pass — the victim's installed queries are checkpointed out of
  the data plane with their pruner state intact and resumed later with
  a byte-identical final result.
* **Fairness** — each global tick, deficit round robin
  (:class:`~repro.cluster.qos.DeficitRoundRobin`) picks which active
  tenants' in-flight passes advance one protocol tick, proportional to
  class weight (uniform weights = everyone, the pre-QoS behavior), and
  the service order *rotates* so no tenant systematically reaches the
  switch's ``offer_batch`` first.

Why interleaving is safe: every tenant's pruner state lives behind its
own flow id inside the pack (stateful queries never observe other
flows' packets), so the shared switch makes the same decisions it would
make solo; superset safety plus the §7.2 reliability protocol then give
result identity with the functional path regardless of loss, reorder,
shard count, or how tenants' batches interleave.  This is
property-tested in ``tests/test_scheduler.py`` and exercised by
``repro serve`` / ``repro bench concurrency``.

Every ``serve`` run additionally collects :class:`SchedulerTelemetry`
— a per-tick probe of slot occupancy, queue depth, and admission
outcomes — from which :class:`ScheduleReport` derives p50/p95/p99
arrival-to-completion latency, mean/peak occupancy, and the rejection
timeline.  :func:`replay_trace` feeds a recorded arrival trace
(``repro.workloads.traces``, see ``docs/TRACES.md``) through the same
loop: that is the ``repro replay`` / ``repro bench replay`` surface,
where tail latency under Poisson, bursty, and diurnal arrivals is the
measured claim.
"""

from __future__ import annotations

import bisect
import dataclasses
import logging
import math
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.qos import (
    DeficitRoundRobin,
    PriorityClass,
    QosPolicy,
    fifo_policy,
    plan_preemption,
)
from repro.cluster.runtime import ShardedSwitchFrontend
from repro.cluster.simulation import (
    ActiveTransfer,
    ClusterSimulation,
    PassStats,
    SimulationConfig,
    SimulationError,
    build_scenario,
)
from repro.db.executor import ExecutionResult
from repro.switch.compiler import CompilationError
from repro.switch.controlplane import ControlPlane
from repro.switch.resources import (
    ResourceExhausted,
    SwitchModel,
    TOFINO_MODEL,
)

logger = logging.getLogger(__name__)

#: Seed stride between tenants, decorrelating their channel RNG draws.
_TENANT_SEED_STRIDE = 1009

#: Default scenario mix ``repro serve`` / ``repro bench concurrency``
#: cycle through when assigning scenarios to tenants.
DEFAULT_TENANT_MIX = (
    "distinct", "filter", "topn", "groupby_max",
    "having_sum", "groupby_sum", "skyline", "join",
)


@dataclasses.dataclass(frozen=True)
class TenantSpec:
    """One tenant's request: a named scenario plus arrival time.

    ``priority`` names a class of the serving policy
    (:class:`~repro.cluster.qos.QosPolicy`; ``None`` = the policy's
    default class) and ``slots`` is the tenant's serving-slot ask —
    both also ride in version-2 arrival traces (``docs/TRACES.md``).
    """

    tenant: str
    scenario: str
    rows: int = 240
    seed: int = 0
    #: Global scheduler tick at which the tenant shows up (0 = start).
    arrival_tick: int = 0
    #: QoS class hint (a policy class name; None = policy default).
    priority: Optional[str] = None
    #: Serving slots this tenant occupies while admitted.
    slots: int = 1

    def __post_init__(self) -> None:
        if self.arrival_tick < 0:
            raise ValueError(
                f"arrival_tick must be >= 0, got {self.arrival_tick}"
            )
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")


@dataclasses.dataclass
class SchedulerConfig:
    """Knobs of one multi-tenant serving run.

    ``slots`` is the concurrent-tenant budget, enforced twice: the
    scheduler never admits more tenants than slots, and the shared
    frontend's ``max_slots`` makes the data plane itself reject
    over-admission.  ``queue_when_full=False`` turns slot contention
    into admission rejection instead of queueing.  ``policy`` is the
    QoS policy the scheduler consults at every admission and service
    decision (default :func:`~repro.cluster.qos.fifo_policy`, which is
    byte-identical to the pre-QoS scheduler); its slot reservations
    must fit within ``slots``.  ``congestion``/``queue_capacity``
    select the transport mode (``docs/CONGESTION.md``): under
    ``"aimd"`` each tenant's streams are paced by
    :class:`~repro.net.congestion.RateController` instances weighted
    by the tenant's resolved QoS class, so interactive tenants
    converge to proportionally higher goodput under contention.  The
    remaining knobs mirror
    :class:`~repro.cluster.simulation.SimulationConfig` and are applied
    to every tenant.
    """

    slots: int = 4
    queue_when_full: bool = True
    policy: QosPolicy = dataclasses.field(default_factory=fifo_policy)
    workers: int = 4
    loss_rate: float = 0.0
    reorder_window: int = 0
    shards: int = 1
    seed: int = 0
    window: int = 32
    timeout_ticks: int = 8
    pipelined: bool = True
    max_ticks: int = 2_000_000
    switch: SwitchModel = TOFINO_MODEL
    congestion: str = "fixed"
    queue_capacity: Optional[int] = None
    #: Execute the shared frontend's shard pruners on a process pool
    #: (:class:`~repro.cluster.runtime.ProcessPoolShardExecutor`);
    #: bit-identical serving decisions, K cores instead of one.  No
    #: effect with ``shards=1``.
    parallel_shards: bool = False
    #: Optional :class:`~repro.obs.Observability` sink.  When set, the
    #: serving loop reports lifecycle events and polls transport /
    #: data-plane counters into it each tick (docs/OBSERVABILITY.md).
    #: Strictly read-only with respect to scheduling state: obs-on
    #: decisions are bit-identical to the default ``None`` (no-op).
    obs: Optional[Any] = dataclasses.field(default=None, repr=False,
                                           compare=False)

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")
        self.policy.validate_slots(self.slots)
        # Delegate range checks of the shared knobs: building a tenant
        # config validates workers/loss/reorder/shards/window.
        self.tenant_simulation_config(0)

    def tenant_simulation_config(self, index: int,
                                 rate_weight: float = 1.0
                                 ) -> SimulationConfig:
        """The :class:`SimulationConfig` tenant ``index`` runs under.

        Each tenant gets a decorrelated channel seed and a disjoint
        flow-id range (``fid_base``), so concurrent flows are globally
        distinguishable on the wire.  ``rate_weight`` is the tenant's
        resolved QoS-class weight, mapped onto its streams' AIMD
        controllers when ``congestion == "aimd"`` (ignored under the
        fixed schedule).  ``repro bench concurrency`` uses the same
        configs for its solo baselines, making solo-vs-shared
        latencies directly comparable.
        """
        return SimulationConfig(
            workers=self.workers,
            loss_rate=self.loss_rate,
            reorder_window=self.reorder_window,
            shards=self.shards,
            seed=self.seed + _TENANT_SEED_STRIDE * index,
            window=self.window,
            timeout_ticks=self.timeout_ticks,
            pipelined=self.pipelined,
            max_ticks=self.max_ticks,
            fid_base=index * (self.workers + self.shards),
            congestion=self.congestion,
            queue_capacity=self.queue_capacity,
            rate_weight=rate_weight,
        )


def _percentile(values: Sequence[int], fraction: float) -> int:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


@dataclasses.dataclass(frozen=True)
class TelemetrySample:
    """One per-tick probe of the serving loop.

    ``occupancy`` counts the serving slots held by admitted tenants
    during this tick (a tenant's ``spec.slots``, summed);
    ``serviced`` the tenants whose in-flight passes the loop actually
    stepped — under the default single-class policy every slot holder
    steps every tick, so the two only diverge when DRR weights skip a
    slot-holding tenant; ``queue_depth`` the tenants waiting for a
    slot.  The event counters record events stamped with *exactly*
    this tick, so they correlate one-to-one with
    ``TenantReport.admitted_tick`` / ``completed_tick`` and
    ``RejectionEvent.tick`` (admissions happen between service steps:
    a tenant admitted at tick ``t`` first advances — and is first
    counted in ``occupancy`` — at ``t + 1``).  Ticks where nothing
    happened (the scheduler idling toward a far-future arrival)
    produce no sample; their occupancy is zero by construction.
    """

    tick: int
    occupancy: int
    queue_depth: int
    admitted: int
    completed: int
    rejected: int
    #: Tenants whose passes advanced this tick (DRR-selected).
    serviced: int = 0
    #: Tenants sitting preempted (checkpointed, slotless) this tick.
    suspended: int = 0
    #: Preemptions / resumes stamped with exactly this tick.
    preempted: int = 0
    resumed: int = 0


@dataclasses.dataclass(frozen=True)
class RejectionEvent:
    """One admission rejection: when, who, and the packer's reason."""

    tick: int
    tenant: str
    reason: str


@dataclasses.dataclass(frozen=True)
class PreemptionEvent:
    """One preemption-state transition on the QoS timeline.

    ``kind`` is ``"preempt"`` (``tenant`` was suspended to make room
    for the arriving ``by``) or ``"resume"`` (``tenant`` re-entered
    service; ``by`` is empty).
    """

    tick: int
    tenant: str
    by: str
    kind: str


@dataclasses.dataclass
class SchedulerTelemetry:
    """Per-tick probe data collected by :meth:`QueryScheduler.serve`.

    The samples are the raw occupancy/queue/admission time series;
    :class:`ScheduleReport` derives the headline latency percentiles
    and occupancy statistics from them.  ``occupancy_timeline``
    downsamples the series into a bounded number of buckets for
    rendering (bench JSON, ``docs/RESULTS.md``).
    """

    slots: int
    samples: List[TelemetrySample] = dataclasses.field(
        default_factory=list)
    rejections: List[RejectionEvent] = dataclasses.field(
        default_factory=list)
    preemptions: List[PreemptionEvent] = dataclasses.field(
        default_factory=list)

    @property
    def peak_occupancy(self) -> int:
        """Most slots simultaneously held during any sampled tick."""
        return max((s.occupancy for s in self.samples), default=0)

    @property
    def peak_queue_depth(self) -> int:
        """Deepest the admission queue ever got."""
        return max((s.queue_depth for s in self.samples), default=0)

    def occupancy_integral(self) -> int:
        """Sum of occupancy over sampled ticks (slot-ticks of service).
        Unsampled (idle) ticks contribute zero, so dividing by the
        makespan gives the time-weighted mean occupancy."""
        return sum(s.occupancy for s in self.samples)

    def occupancy_timeline(self, buckets: int = 24) -> List[Dict]:
        """The occupancy series downsampled to at most ``buckets``
        equal-width tick ranges: per bucket the mean/max occupancy and
        max queue depth.  Deterministic; empty when nothing ran."""
        if not self.samples or buckets < 1:
            return []
        span = self.samples[-1].tick
        width = max(1, math.ceil(span / buckets))
        timeline: List[Dict] = []
        grouped: Dict[int, List[TelemetrySample]] = {}
        for sample in self.samples:
            grouped.setdefault(max(sample.tick - 1, 0) // width,
                               []).append(sample)
        for index in sorted(grouped):
            bucket = grouped[index]
            # Mean over the *bucket width*: unsampled ticks are idle.
            ticks_in_bucket = min(width, span - index * width)
            timeline.append({
                "until_tick": min((index + 1) * width, span),
                "mean_occupancy": round(
                    sum(s.occupancy for s in bucket)
                    / max(ticks_in_bucket, 1), 4),
                "max_occupancy": max(s.occupancy for s in bucket),
                "max_queue_depth": max(s.queue_depth for s in bucket),
            })
        return timeline


@dataclasses.dataclass
class TenantReport:
    """Outcome of one tenant's stay in the scheduler."""

    spec: TenantSpec
    #: ``served`` | ``rejected`` | ``failed`` (mid-run install error).
    status: str
    reason: str = ""
    result: Optional[ExecutionResult] = None
    #: ``result == QueryPlan.run(...)``; None when unchecked/unserved.
    equivalent: Optional[bool] = None
    admitted_tick: Optional[int] = None
    completed_tick: Optional[int] = None
    passes: List[PassStats] = dataclasses.field(default_factory=list)
    #: Resolved QoS class name (the policy default when unhinted).
    qos_class: str = ""
    #: Times this tenant was preempted (suspended mid-pass).
    preemptions: int = 0
    #: Global ticks spent suspended between preemption and resume.
    suspended_ticks: int = 0

    @property
    def wait_ticks(self) -> Optional[int]:
        """Ticks spent queued between arrival and admission."""
        if self.admitted_tick is None:
            return None
        return self.admitted_tick - self.spec.arrival_tick

    @property
    def service_ticks(self) -> Optional[int]:
        """Ticks between admission and completion."""
        if self.completed_tick is None or self.admitted_tick is None:
            return None
        return self.completed_tick - self.admitted_tick

    @property
    def latency_ticks(self) -> Optional[int]:
        """End-to-end latency the tenant observed: arrival (not
        admission) to completion, so queueing delay is included."""
        if self.completed_tick is None or self.status != "served":
            return None
        return self.completed_tick - self.spec.arrival_tick

    @property
    def entries(self) -> int:
        """Unique entries this tenant offered to the wire."""
        return sum(p.entries for p in self.passes)

    @property
    def delivered(self) -> int:
        """Entries of this tenant that reached the master."""
        return sum(p.delivered for p in self.passes)


@dataclasses.dataclass
class ScheduleReport:
    """Outcome of one :meth:`QueryScheduler.serve` run."""

    tenants: List[TenantReport]
    ticks: int
    wall_seconds: float
    slots: int
    shards: int
    loss_rate: float
    reorder_window: int
    telemetry: Optional[SchedulerTelemetry] = None
    #: Name of the QoS policy the run was served under.
    policy: str = "fifo"

    @property
    def served(self) -> List[TenantReport]:
        """Tenants that completed service."""
        return [t for t in self.tenants if t.status == "served"]

    @property
    def rejected(self) -> List[TenantReport]:
        """Tenants turned away at admission."""
        return [t for t in self.tenants if t.status == "rejected"]

    @property
    def all_equivalent(self) -> Optional[bool]:
        """Every served tenant matched its solo ``QueryPlan.run``
        (None when serving ran with ``check=False``)."""
        verdicts = [t.equivalent for t in self.served]
        if not verdicts or any(v is None for v in verdicts):
            return None
        return all(verdicts)

    @property
    def entries(self) -> int:
        """Unique entries offered to the wire across served tenants."""
        return sum(t.entries for t in self.served)

    @property
    def delivered(self) -> int:
        """Entries delivered to masters across served tenants."""
        return sum(t.delivered for t in self.served)

    @property
    def throughput_entries_per_second(self) -> Optional[float]:
        """Aggregate serving throughput: offered entries / makespan.
        ``None`` when nothing was served (empty trace, every tenant
        rejected) or the clock recorded no elapsed time — a replay with
        zero served ticks must not divide by zero."""
        if self.wall_seconds <= 0 or not self.served:
            return None
        return self.entries / self.wall_seconds

    @property
    def throughput_entries_per_tick(self) -> Optional[float]:
        """Deterministic throughput: offered entries / makespan ticks
        (``None`` when the replay served zero ticks)."""
        if self.ticks <= 0 or not self.served:
            return None
        return self.entries / self.ticks

    @property
    def latencies(self) -> List[int]:
        """Per-tenant arrival-to-completion latencies (served only),
        in report order."""
        return [t.latency_ticks for t in self.served
                if t.latency_ticks is not None]

    def latency_percentile(self, fraction: float) -> Optional[int]:
        """Nearest-rank latency percentile in ticks; ``None`` when no
        tenant was served (never a division by zero)."""
        values = self.latencies
        if not values:
            return None
        return _percentile(values, fraction)

    @property
    def latency_p50_ticks(self) -> Optional[int]:
        """Median arrival-to-completion latency."""
        return self.latency_percentile(0.50)

    @property
    def latency_p95_ticks(self) -> Optional[int]:
        """95th-percentile arrival-to-completion latency."""
        return self.latency_percentile(0.95)

    @property
    def latency_p99_ticks(self) -> Optional[int]:
        """99th-percentile (tail) arrival-to-completion latency."""
        return self.latency_percentile(0.99)

    @property
    def mean_occupancy(self) -> Optional[float]:
        """Time-weighted mean slot occupancy over the makespan
        (idle ticks count as zero); ``None`` without telemetry or when
        zero ticks were served."""
        if self.telemetry is None or self.ticks <= 0:
            return None
        return self.telemetry.occupancy_integral() / self.ticks

    @property
    def peak_occupancy(self) -> Optional[int]:
        """Most slots simultaneously held; ``None`` without telemetry."""
        if self.telemetry is None:
            return None
        return self.telemetry.peak_occupancy

    @property
    def rejection_timeline(self) -> List[RejectionEvent]:
        """Admission rejections in tick order (empty without
        telemetry)."""
        if self.telemetry is None:
            return []
        return list(self.telemetry.rejections)

    @property
    def preemption_timeline(self) -> List[PreemptionEvent]:
        """Preempt/resume transitions in tick order (empty without
        telemetry or under a no-preemption policy)."""
        if self.telemetry is None:
            return []
        return list(self.telemetry.preemptions)

    @property
    def preemption_count(self) -> int:
        """Total preemptions across served tenants."""
        return sum(t.preemptions for t in self.tenants)

    def class_latencies(self, qos_class: str) -> List[int]:
        """Arrival-to-completion latencies of one QoS class's served
        tenants, in report order."""
        return [t.latency_ticks for t in self.served
                if t.qos_class == qos_class and t.latency_ticks is not None]

    def class_latency_percentile(self, qos_class: str,
                                 fraction: float) -> Optional[int]:
        """Nearest-rank latency percentile within one class (``None``
        when the class served nothing)."""
        values = self.class_latencies(qos_class)
        if not values:
            return None
        return _percentile(values, fraction)

    def class_summary(self) -> Dict[str, Dict]:
        """Per-class serving outcomes: counts, latency percentiles,
        and preemption totals, keyed by class name (only classes that
        appear among this run's tenants)."""
        summary: Dict[str, Dict] = {}
        for tenant in self.tenants:
            name = tenant.qos_class or "standard"
            entry = summary.setdefault(name, {
                "tenants": 0, "served": 0, "rejected": 0,
                "preemptions": 0, "suspended_ticks": 0,
            })
            entry["tenants"] += 1
            entry["preemptions"] += tenant.preemptions
            entry["suspended_ticks"] += tenant.suspended_ticks
            if tenant.status == "served":
                entry["served"] += 1
            elif tenant.status == "rejected":
                entry["rejected"] += 1
        for name, entry in summary.items():
            values = self.class_latencies(name)
            entry["latency"] = {
                "p50_ticks": _percentile(values, 0.50) if values else None,
                "p95_ticks": _percentile(values, 0.95) if values else None,
                "p99_ticks": _percentile(values, 0.99) if values else None,
                "mean_ticks": (sum(values) / len(values)
                               if values else None),
                "max_ticks": max(values) if values else None,
            }
        return summary

    def to_payload(self) -> Dict:
        """The report as a deterministic, JSON-serializable dict.

        Everything here is a pure function of the tenant specs, the
        config, and the seeds — wall-clock time is deliberately
        excluded, so replaying the same trace with the same seed yields
        a byte-identical ``json.dumps(report.to_payload(),
        sort_keys=True)``.  ``repro bench replay`` and the determinism
        property test both rely on this.
        """
        mean_occupancy = self.mean_occupancy
        return {
            "slots": self.slots,
            "policy": self.policy,
            "shards": self.shards,
            "loss_rate": self.loss_rate,
            "reorder_window": self.reorder_window,
            "ticks": self.ticks,
            "served": len(self.served),
            "rejected": len(self.rejected),
            "all_equivalent": self.all_equivalent,
            "entries": self.entries,
            "delivered": self.delivered,
            "throughput_entries_per_tick":
                self.throughput_entries_per_tick,
            "latency": {
                "p50_ticks": self.latency_p50_ticks,
                "p95_ticks": self.latency_p95_ticks,
                "p99_ticks": self.latency_p99_ticks,
                "mean_ticks": (sum(self.latencies) / len(self.latencies)
                               if self.latencies else None),
                "max_ticks": (max(self.latencies)
                              if self.latencies else None),
            },
            "occupancy": {
                "mean": (None if mean_occupancy is None
                         else round(mean_occupancy, 4)),
                "peak": self.peak_occupancy,
                "peak_queue_depth": (None if self.telemetry is None
                                     else self.telemetry.peak_queue_depth),
                "timeline": ([] if self.telemetry is None
                             else self.telemetry.occupancy_timeline()),
            },
            "rejections": [
                {"tick": event.tick, "tenant": event.tenant,
                 "reason": event.reason}
                for event in self.rejection_timeline
            ],
            "classes": self.class_summary(),
            "preemptions": [
                {"tick": event.tick, "tenant": event.tenant,
                 "by": event.by, "kind": event.kind}
                for event in self.preemption_timeline
            ],
            "tenants": [
                {
                    "tenant": t.spec.tenant,
                    "scenario": t.spec.scenario,
                    "rows": t.spec.rows,
                    "seed": t.spec.seed,
                    "arrival_tick": t.spec.arrival_tick,
                    "qos_class": t.qos_class,
                    "slots": t.spec.slots,
                    "status": t.status,
                    "reason": t.reason,
                    "admitted_tick": t.admitted_tick,
                    "completed_tick": t.completed_tick,
                    "wait_ticks": t.wait_ticks,
                    "service_ticks": t.service_ticks,
                    "latency_ticks": t.latency_ticks,
                    "preemptions": t.preemptions,
                    "suspended_ticks": t.suspended_ticks,
                    "entries": t.entries,
                    "delivered": t.delivered,
                    "equivalent": t.equivalent,
                }
                for t in self.tenants
            ],
        }


class _TenantFrontend:
    """Per-tenant view of the shared switch frontend.

    Tracks which flow ids the tenant currently has installed, so the
    scheduler can checkpoint them all on preemption
    (``suspend_query``) and restore them byte-identically on resume —
    the tenant's drivers keep calling the usual control-plane surface
    and never notice the round trip.
    """

    def __init__(self, shared: Any):
        self._shared = shared
        self.fids: set = set()

    def install_query(self, spec, fid=None):
        installation = self._shared.install_query(spec, fid=fid)
        self.fids.add(installation.fid)
        return installation

    def uninstall_query(self, fid: int) -> None:
        self._shared.uninstall_query(fid)
        self.fids.discard(fid)

    def offer(self, fid: int, entry):
        return self._shared.offer(fid, entry)

    def offer_batch(self, fid: int, entries):
        return self._shared.offer_batch(fid, entries)

    def pruner_for(self, fid: int):
        return self._shared.pruner_for(fid)

    def suspend(self) -> List[Any]:
        """Checkpoint every installed query (state-preserving).  A fid
        whose transfer already FIN-drained suspends to ``None`` (there
        is nothing left to checkpoint) and is filtered out."""
        checkpoints = [self._shared.suspend_query(fid)
                       for fid in sorted(self.fids)]
        return [ckpt for ckpt in checkpoints if ckpt is not None]

    def resume(self, checkpoints: List[Any]) -> None:
        """Re-install the suspended queries under their original fids.

        Consumes ``checkpoints`` in place as each re-install lands, so
        a mid-list ``ResourceExhausted`` leaves exactly the
        not-yet-restored checkpoints behind — a retry resumes the
        remainder instead of double-installing a fid.
        """
        while checkpoints:
            self._shared.resume_query(checkpoints[0])
            checkpoints.pop(0)


class _TenantRun:
    """Internal per-tenant state machine (spec -> driver -> report)."""

    def __init__(self, spec: TenantSpec, index: int,
                 config: SchedulerConfig, frontend: Any):
        self.spec = spec
        self.index = index
        self.status = "queued"
        self.reason = ""
        self.result: Optional[ExecutionResult] = None
        self.reference: Optional[ExecutionResult] = None
        self.equivalent: Optional[bool] = None
        self.admitted_tick: Optional[int] = None
        self.completed_tick: Optional[int] = None
        self.passes: List[PassStats] = []
        self.current: Optional[ActiveTransfer] = None
        self._delivered = None
        self.qos_class: PriorityClass = config.policy.resolve(
            spec.priority)
        self.preemptions = 0
        self.suspended_ticks = 0
        self._suspend_tick: Optional[int] = None
        self._checkpoints: Optional[List[Any]] = None
        self.frontend = _TenantFrontend(frontend)
        self.sim = ClusterSimulation(
            config.tenant_simulation_config(
                index, rate_weight=self.qos_class.weight),
            frontend_factory=lambda: self.frontend,
        )
        self.gen = None
        self.query = None
        self.tables = None

    def prepare(self) -> None:
        """Materialize the tenant's scenario.  Runs before the serving
        clock starts, so dataset construction is not billed to the
        makespan (the solo baselines exclude it the same way)."""
        self.query, self.tables = build_scenario(self.spec.scenario,
                                                 rows=self.spec.rows,
                                                 seed=self.spec.seed)

    def admit(self, tick: int) -> None:
        """Start the tenant's driver (installing its query — this is
        where ``ResourceExhausted`` surfaces as admission rejection)."""
        self.gen = self.sim.query_generator(self.query, self.tables)
        self._advance(None)
        self.status = "admitted"
        self.admitted_tick = tick

    def _advance(self, value) -> bool:
        """Resume the driver; start its next pass or capture the result."""
        try:
            request = self.gen.send(value)
        except StopIteration as stop:
            self.result = stop.value
            self.current = None
            return False
        self.current = self.sim.begin_transfer(request)
        return True

    def finish_pass(self) -> None:
        """Record the completed pass and stash its delivered entries."""
        self.passes.append(self.current.stats())
        self._delivered = self.current.delivered()

    def advance(self) -> bool:
        """Feed the finished pass back to the driver; True while the
        tenant still has wire passes to run."""
        delivered, self._delivered = self._delivered, None
        return self._advance(delivered)

    def complete(self, tick: int) -> None:
        self.status = "served"
        self.completed_tick = tick

    def suspend(self, tick: int) -> None:
        """Preempt mid-pass: checkpoint every installed query out of
        the shared data plane (pruner state preserved) and freeze the
        in-flight :class:`ActiveTransfer` — nothing about the pass
        advances while suspended, so the resumed run is byte-identical
        to an uninterrupted one."""
        self._checkpoints = self.frontend.suspend()
        self.status = "suspended"
        self._suspend_tick = tick
        self.preemptions += 1

    def resume(self, tick: int) -> None:
        """Re-install the checkpointed queries and rejoin the active
        set.  Raises ``ResourceExhausted`` (checkpoint no longer fits
        alongside the current pack) without losing the not-yet-restored
        checkpoints — ``_TenantFrontend.resume`` consumes the list as
        installs land — so the scheduler can retry later."""
        if self._checkpoints:
            self.frontend.resume(self._checkpoints)
        self._checkpoints = None
        self.status = "admitted"
        if self._suspend_tick is not None:
            self.suspended_ticks += tick - self._suspend_tick
            self._suspend_tick = None

    def evaluate(self) -> None:
        """Compare against the functional ``QueryPlan.run`` reference.
        Runs after the serving clock stops — verification work must not
        skew the reported makespan (the solo ``ClusterSimulation.run``
        likewise keeps its reference outside ``wall_seconds``).
        Idempotent: the socket server evaluates at completion time so
        results stream back verified, and the final report must not
        redo the comparison."""
        if self.status != "served" or self.equivalent is not None:
            return
        self.reference = (self.sim.planner.plan(self.query)
                          .run(self.tables).result)
        self.equivalent = self.result == self.reference

    def reject(self, reason: str) -> None:
        self.status = "rejected"
        self.reason = reason

    def fail(self, reason: str, tick: int) -> None:
        self.status = "failed"
        self.reason = reason
        self.completed_tick = tick

    def report(self) -> TenantReport:
        return TenantReport(
            spec=self.spec, status=self.status, reason=self.reason,
            result=self.result, equivalent=self.equivalent,
            admitted_tick=self.admitted_tick,
            completed_tick=self.completed_tick, passes=self.passes,
            qos_class=self.qos_class.name,
            preemptions=self.preemptions,
            suspended_ticks=self.suspended_ticks,
        )


def _build_frontend(cfg: SchedulerConfig):
    """The shared data plane every tenant installs into."""
    if cfg.shards > 1:
        return ShardedSwitchFrontend(cfg.switch, cfg.shards,
                                     seed=cfg.seed,
                                     max_slots=cfg.slots,
                                     parallel=cfg.parallel_shards)
    return ControlPlane(cfg.switch, seed=cfg.seed,
                        max_slots=cfg.slots)


class ServingLoop:
    """Resumable admission + interleaving core of the scheduler.

    One instance owns the shared frontend, the QoS/DRR state, and the
    per-tick telemetry of a serving session, and exposes the loop *one
    iteration at a time*: :meth:`submit` may be called between
    :meth:`run_tick` calls.  That is what lets the asyncio socket
    frontend (:class:`repro.serving.server.ReproServer`) admit tenants
    from live connections while the tick domain stays a pure function
    of the admitted specs — a recorded trace of a socket session
    replays byte-identically through :meth:`QueryScheduler.serve`,
    which drives this same core to exhaustion in a plain ``while``
    loop.

    The one rule late submissions must obey: once an admission phase
    has executed at tick ``t``, a new spec's ``arrival_tick`` must be
    at least :attr:`arrival_floor` (``t + 1``).  An arrival stamped at
    or below an already-executed phase would have been admitted
    *earlier* in a replay (where all specs are known up front),
    breaking tick-domain determinism; :meth:`submit` enforces this.
    """

    def __init__(self, config: Optional[SchedulerConfig] = None,
                 chaos: Optional[Any] = None):
        self.config = config or SchedulerConfig()
        self.frontend = _build_frontend(self.config)
        #: Optional :class:`~repro.cluster.chaos.ChaosController`: its
        #: due failure events are injected at the top of every
        #: :meth:`run_tick` (see ``docs/CHAOS.md``).
        self.chaos = chaos
        #: Optional :class:`~repro.obs.Observability` sink (from the
        #: config); ``None`` keeps every hook site a no-op.
        self.obs = self.config.obs
        self.tick = 0
        self.pending: List[_TenantRun] = []
        self.waiting: List[_TenantRun] = []
        self.suspended: List[_TenantRun] = []
        self.active: List[_TenantRun] = []
        self.finished: List[_TenantRun] = []
        self.drr = DeficitRoundRobin()
        self.telemetry = SchedulerTelemetry(slots=self.config.slots)
        # Per-tick probe bookkeeping, keyed by the *exact* tick each
        # event is stamped with (admissions happen between service
        # steps, so an iteration's admission events and its service
        # step carry different ticks): tick -> [admitted, completed,
        # rejected, preempted, resumed], tick -> (occupancy, serviced,
        # queue_depth, suspended), tick -> (queue depth, suspended)
        # after an admission phase.
        self._counts: Dict[int, List[int]] = {}
        self._service: Dict[int, tuple] = {}
        self._queue_at: Dict[int, tuple] = {}
        self._next_index = 0
        self._names: set = set()
        # Tick of the most recently executed admission phase (-1 =
        # none yet, so arrivals at tick 0 are still admissible).
        self._phase_tick = -1

    @property
    def has_work(self) -> bool:
        """True while any tenant is pending, queued, suspended, or
        mid-service — the sync serve loop's continuation condition."""
        return bool(self.pending or self.waiting or self.suspended
                    or self.active)

    @property
    def arrival_floor(self) -> int:
        """Lowest ``arrival_tick`` a new submission may carry.

        Every admission phase at or before :attr:`_phase_tick` has
        already run without seeing the submission, so stamping below
        the floor would admit it earlier under replay.  The socket
        server stamps live arrivals with exactly this floor (or the
        client's future hint, whichever is later)."""
        return self._phase_tick + 1

    def submit(self, spec: TenantSpec) -> _TenantRun:
        """Enqueue one tenant (dataset built now, before its ticks).

        Raises ``ValueError`` for duplicate tenant names, unknown
        priority hints (surfaced by class resolution in the run
        constructor), or an ``arrival_tick`` below
        :attr:`arrival_floor`."""
        if spec.tenant in self._names:
            raise ValueError(
                f"tenant names must be unique, got a second "
                f"{spec.tenant!r}")
        if spec.arrival_tick < self.arrival_floor:
            raise ValueError(
                f"arrival_tick {spec.arrival_tick} is below the "
                f"serving loop's arrival floor {self.arrival_floor} "
                "(that admission phase already ran)")
        # Construct and prepare before mutating any loop state: a
        # submission that fails (unknown priority class, bad scenario
        # rows) must not consume an index or a name, or live serving
        # would drift from the recorded trace's index assignment.
        run = _TenantRun(spec, self._next_index, self.config,
                         self.frontend)
        run.prepare()
        self._next_index += 1
        self._names.add(spec.tenant)
        # Keep pending sorted by (arrival_tick, index); submissions
        # carry monotone indices, so bisect on arrival alone is stable.
        at = bisect.bisect_right(
            [p.spec.arrival_tick for p in self.pending],
            spec.arrival_tick)
        self.pending.insert(at, run)
        return run

    def _bump(self, at: int, slot: int) -> None:
        self._counts.setdefault(at, [0, 0, 0, 0, 0])[slot] += 1

    def _in_service(self) -> Dict[str, int]:
        held: Dict[str, int] = {}
        for run in self.active:
            name = run.qos_class.name
            held[name] = held.get(name, 0) + run.spec.slots
        return held

    def _reject(self, run: _TenantRun, reason: str, at: int) -> None:
        run.reject(reason)
        self.telemetry.rejections.append(RejectionEvent(
            at, run.spec.tenant, run.reason))
        self._bump(at, 2)
        logger.info("rejected tenant %s at tick %d: %s",
                    run.spec.tenant, at, reason)
        if self.obs is not None:
            self.obs.on_reject(run, at)
        self.finished.append(run)

    def run_tick(self) -> List[_TenantRun]:
        """One iteration of the serving loop: pull arrivals, run the
        admission/resume phase at the current tick, then either advance
        the in-flight passes one protocol tick or idle toward the next
        arrival.  Returns the runs that reached a terminal state
        (served, rejected, failed) during this call; when the loop is
        completely idle the call is a pure no-op.
        """
        cfg = self.config
        policy = cfg.policy
        waiting, suspended = self.waiting, self.suspended
        active, finished = self.active, self.finished
        done_before = len(finished)
        tick = self.tick
        if self.chaos is not None:
            # Inject due failure events before this iteration's
            # admission phase and service step, in schedule order —
            # deterministic: the same schedule and specs reproduce the
            # same kill/migrate/restart sequence tick for tick.
            applied = self.chaos.apply_due(tick, self)
            if self.obs is not None and applied:
                self.obs.on_chaos(applied, tick, self.chaos)
        while self.pending and self.pending[0].spec.arrival_tick <= tick:
            waiting.append(self.pending.pop(0))
        # Admission & resume, highest class priority first (FIFO
        # within a class: arrival tick, then spec order).
        candidates = sorted(
            waiting + suspended,
            key=lambda r: (-r.qos_class.priority,
                           r.spec.arrival_tick, r.index))
        for run in candidates:
            cls = run.qos_class
            need = run.spec.slots
            if (run.status == "queued"
                    and need > policy.best_case_slots(cls, cfg.slots)):
                waiting.remove(run)
                self._reject(
                    run, f"needs {need} slot(s) but class "
                         f"{cls.name!r} can use at most "
                         f"{policy.best_case_slots(cls, cfg.slots)}"
                         f" of {cfg.slots} (reserved for other "
                         "classes)", tick)
                continue
            held = self._in_service()
            free = cfg.slots - sum(held.values())
            available = policy.available_to(cls, free, held)
            if available < need and run.status == "queued":
                # A strictly-higher-priority arrival may suspend
                # preemptible lower classes (never below their
                # reservation floors) to make room.
                victims = plan_preemption(
                    policy, cls, need, need - available,
                    [(victim, victim.qos_class, victim.spec.slots)
                     for victim in sorted(
                         active,
                         key=lambda v: (v.qos_class.priority,
                                        -(v.admitted_tick or 0),
                                        -v.index))],
                    held)
                if victims:
                    for victim in victims:
                        victim.suspend(tick)
                        active.remove(victim)
                        suspended.append(victim)
                        self.drr.forget(victim.index)
                        self.telemetry.preemptions.append(PreemptionEvent(
                            tick, victim.spec.tenant,
                            run.spec.tenant, "preempt"))
                        self._bump(tick, 3)
                        logger.info(
                            "preempted tenant %s for %s at tick %d",
                            victim.spec.tenant, run.spec.tenant, tick)
                        if self.obs is not None:
                            self.obs.on_preempt(victim, tick, by=run)
                    held = self._in_service()
                    free = cfg.slots - sum(held.values())
                    available = policy.available_to(cls, free, held)
            if available < need:
                if run.status == "queued" and not cfg.queue_when_full:
                    waiting.remove(run)
                    if free >= need:
                        self._reject(
                            run, f"no unreserved slot: class "
                                 f"{cls.name!r} is locked out by "
                                 "other classes' reservations at "
                                 "arrival", tick)
                    else:
                        self._reject(
                            run, f"no free slot: all {cfg.slots} "
                                 "serving slots busy at arrival",
                            tick)
                continue  # queued/suspended: wait for a slot
            if run.status == "suspended":
                try:
                    run.resume(tick)
                except (ResourceExhausted, CompilationError):
                    continue  # checkpoint does not fit yet; retry
                suspended.remove(run)
                active.append(run)
                self.drr.admit(run.index)
                self.telemetry.preemptions.append(PreemptionEvent(
                    tick, run.spec.tenant, "", "resume"))
                self._bump(tick, 4)
                logger.info("resumed tenant %s at tick %d",
                            run.spec.tenant, tick)
                if self.obs is not None:
                    self.obs.on_resume(run, tick)
                continue
            waiting.remove(run)
            try:
                run.admit(tick)
            except (ResourceExhausted, CompilationError) as error:
                self._reject(run, str(error), tick)
                continue
            self._bump(tick, 0)
            logger.debug("admitted tenant %s at tick %d",
                         run.spec.tenant, tick)
            if self.obs is not None:
                self.obs.on_admit(run, tick)
            if run.current is None:
                run.complete(tick)
                self._bump(tick, 1)
                if self.obs is not None:
                    self.obs.on_complete(run, tick)
                finished.append(run)
            else:
                active.append(run)
                self.drr.admit(run.index)
        self._phase_tick = tick
        if tick in self._counts:
            self._queue_at[tick] = (len(waiting), len(suspended))
        if not active:
            if suspended:
                # Resume retries next tick (slots are free now).
                self.tick = tick + 1
            elif self.pending:
                # Idle until the next arrival.
                self.tick = max(tick + 1,
                                self.pending[0].spec.arrival_tick)
            # Fully idle: tick stays put; the call was a no-op.
            return finished[done_before:]
        tick += 1
        if tick > cfg.max_ticks:
            raise SimulationError(
                f"serving did not complete within {cfg.max_ticks} "
                "global ticks (protocol livelock?)"
            )
        # Weighted fair service (deficit round robin): which active
        # tenants' passes advance this tick is set by class weight;
        # with uniform weights every tenant steps every tick.  The
        # service order still rotates so no tenant systematically
        # reaches the switch's offer_batch first.
        ready = set(self.drr.serviced({run.index: run.qos_class.weight
                                       for run in active}))
        stepped = [run for run in active if run.index in ready]
        offset = tick % len(stepped)
        done_runs: List[_TenantRun] = []
        for run in stepped[offset:] + stepped[:offset]:
            run.current.step()
            if not run.current.done:
                continue
            run.finish_pass()
            try:
                more = run.advance()
            except (ResourceExhausted, CompilationError) as error:
                run.fail(f"mid-run install failed: {error}", tick)
                done_runs.append(run)
                continue
            if not more:
                run.complete(tick)
                self._bump(tick, 1)
                logger.debug("completed tenant %s at tick %d",
                             run.spec.tenant, tick)
                if self.obs is not None:
                    self.obs.on_complete(run, tick)
                done_runs.append(run)
        # Occupancy = slots held this tick (slot-weighted), which
        # equals the serviced count under uniform DRR weights.
        self._service[tick] = (sum(run.spec.slots for run in active),
                               len(stepped), len(waiting),
                               len(suspended))
        if self.obs is not None:
            self.obs.on_service_tick(self, tick, stepped)
        for run in done_runs:
            active.remove(run)
            self.drr.forget(run.index)
            finished.append(run)
        self.tick = tick
        return finished[done_before:]

    def report(self, check: bool = True,
               wall_seconds: float = 0.0) -> ScheduleReport:
        """Assemble the session's :class:`ScheduleReport`.

        Rebuilds the telemetry samples from the probe dicts (so calling
        it twice is safe) and — with ``check=True`` — evaluates every
        served tenant against its solo ``QueryPlan.run`` reference
        (idempotent per tenant: the socket server may have evaluated
        some at completion time already)."""
        cfg = self.config
        self.telemetry.samples = []
        for sample_tick in sorted(set(self._counts) | set(self._service)):
            occupancy, serviced, queue_depth, idle_suspended = \
                self._service.get(
                    sample_tick,
                    (0, 0) + self._queue_at.get(sample_tick, (0, 0)))
            admitted, completed, rejected, preempted, resumed = \
                self._counts.get(sample_tick, (0, 0, 0, 0, 0))
            self.telemetry.samples.append(TelemetrySample(
                tick=sample_tick, occupancy=occupancy,
                queue_depth=queue_depth, admitted=admitted,
                completed=completed, rejected=rejected,
                serviced=serviced, suspended=idle_suspended,
                preempted=preempted, resumed=resumed))
        if check:
            for run in self.finished:
                run.evaluate()
        ordered = sorted(self.finished, key=lambda r: r.index)
        return ScheduleReport(
            tenants=[run.report() for run in ordered],
            ticks=self.tick,
            wall_seconds=wall_seconds,
            slots=cfg.slots,
            shards=cfg.shards,
            loss_rate=cfg.loss_rate,
            reorder_window=cfg.reorder_window,
            telemetry=self.telemetry,
            policy=cfg.policy.name,
        )


class QueryScheduler:
    """Serve many concurrent tenants through one shared switch frontend.

    ``serve(tenants)`` runs the admission + interleaving loop described
    in the module docstring and returns a :class:`ScheduleReport` whose
    per-tenant results are (by construction, and checked when
    ``check=True``) identical to each tenant's solo ``QueryPlan.run``.
    The loop itself lives in :class:`ServingLoop`; this wrapper drives
    it synchronously to exhaustion, which is also the reference
    semantics the asyncio socket frontend must (and does) reproduce.
    """

    def __init__(self, config: Optional[SchedulerConfig] = None):
        self.config = config or SchedulerConfig()

    def _build_frontend(self):
        """The shared data plane every tenant installs into."""
        return _build_frontend(self.config)

    def serve(self, tenants: Sequence[TenantSpec],
              check: bool = True,
              chaos: Optional[Any] = None) -> ScheduleReport:
        """Admit, arbitrate, and interleave ``tenants`` to completion.

        With ``check=True`` (default) each tenant's scenario is also
        executed functionally via ``QueryPlan.run`` and compared;
        ``TenantReport.equivalent`` records the verdict.  ``chaos`` is
        an optional :class:`~repro.cluster.chaos.ChaosController` whose
        seeded failure schedule is injected into the serving loop
        (``docs/CHAOS.md``) — result identity must hold regardless.
        """
        if not tenants:
            raise ValueError("serve needs at least one tenant")
        names = [spec.tenant for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        loop = ServingLoop(self.config, chaos=chaos)
        # Submitting (and thus resolving every tenant's class) up front
        # surfaces unknown priority hints as a serve-time ValueError,
        # not a mid-run one; dataset construction also lands here,
        # before the serving clock starts.
        for spec in tenants:
            loop.submit(spec)
        logger.info("serving %d tenant(s) on %d slot(s), policy %s",
                    len(tenants), self.config.slots,
                    self.config.policy.name)
        start = time.perf_counter()
        while loop.has_work:
            loop.run_tick()
        wall = time.perf_counter() - start
        if loop.obs is not None:
            loop.obs.finalize(loop)
        return loop.report(check=check, wall_seconds=wall)


def tenant_specs(count: int, rows: int = 240, seed: int = 0,
                 mix: Sequence[str] = DEFAULT_TENANT_MIX,
                 arrival_stride: int = 0,
                 priorities: Optional[Sequence[str]] = None,
                 ) -> List[TenantSpec]:
    """``count`` tenant specs cycling through ``mix``; tenant ``i``
    arrives at ``i * arrival_stride`` (0 = everyone at start) and — when
    ``priorities`` is given — carries the ``i % len(priorities)``-th
    QoS class hint.  Shared by ``repro serve`` and the concurrency and
    QoS benchmarks."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if not mix:
        raise ValueError("scenario mix must not be empty")
    if priorities is not None and not priorities:
        raise ValueError("priorities must not be empty when given")
    return [
        TenantSpec(tenant=f"tenant-{i}", scenario=mix[i % len(mix)],
                   rows=rows, seed=seed + i,
                   arrival_tick=i * arrival_stride,
                   priority=(None if priorities is None
                             else priorities[i % len(priorities)]))
        for i in range(count)
    ]


def replay_trace(trace, config: Optional[SchedulerConfig] = None,
                 check: bool = True,
                 apply_overrides: bool = True,
                 chaos: Optional[Any] = None) -> ScheduleReport:
    """Replay a recorded arrival trace through the scheduler.

    ``trace`` is a :class:`repro.workloads.traces.Trace` (from
    :func:`~repro.workloads.traces.load_trace` or
    :func:`~repro.workloads.traces.generate_trace`).  With
    ``apply_overrides=True`` (default) the trace header's
    ``loss_rate``/``shards`` replace the config's values — a recorded
    trace pins its network conditions; pass ``False`` when the caller
    (e.g. an explicit CLI flag) has already resolved them.

    An empty trace is a valid replay: the result is a zero-tick
    :class:`ScheduleReport` with no tenants, ``None`` latency
    percentiles and throughput, and empty telemetry — never a division
    by zero.
    """
    config = config or SchedulerConfig()
    if apply_overrides:
        overrides = {}
        if trace.loss_rate is not None:
            overrides["loss_rate"] = trace.loss_rate
        if trace.shards is not None:
            overrides["shards"] = trace.shards
        if overrides:
            config = dataclasses.replace(config, **overrides)
    specs = trace.tenant_specs()
    if not specs:
        return ScheduleReport(
            tenants=[], ticks=0, wall_seconds=0.0, slots=config.slots,
            shards=config.shards, loss_rate=config.loss_rate,
            reorder_window=config.reorder_window,
            telemetry=SchedulerTelemetry(slots=config.slots),
            policy=config.policy.name,
        )
    return QueryScheduler(config).serve(specs, check=check, chaos=chaos)
