"""Seeded fault injection: failure schedules and live query migration.

The serving stack has every primitive the paper's §6/§7.2 design
implies for fault tolerance — checkpointed ``suspend_query`` /
``resume_query``, sharded switch frontends, the reliability protocol
over lossy channels — and this module is the harness that actually
kills things.  Failures come from a seeded, *replayable*
:class:`FailureSchedule` (versioned JSON lines, the same discipline as
``repro.workloads.traces``), so every chaos run is a deterministic
regression test rather than a flake generator (the FATE/DESTINI
fault-injection-as-testing discipline).  The format and the migration
state machine are specified normatively in ``docs/CHAOS.md``.

Format summary (one JSON object per line):

* line 1 — the **header**: ``{"kind": "cheetah-chaos", "version": 1,
  ...}`` with provenance fields ``seed`` and the ``shards``/``workers``
  the generator assumed (informational);
* every following line — one **event record**: ``tick``
  (non-decreasing) plus ``event`` and its operand:

  - ``kill_shard`` (``shard``) — crash one physical switch pipeline;
    its installed queries are suspended via checkpoints and re-homed to
    survivors (:meth:`ShardedSwitchFrontend.kill_shard` — K logical
    shards on K−1 physical pipelines, results byte-identical);
  - ``restart`` (``shard``) — bring a crashed pipeline back, moving
    the migrated state home (K−1→K live);
  - ``kill_worker`` (``worker``) — crash one CWorker mid-pass; a
    survivor replays its unacked §7.2 window
    (:meth:`~repro.net.reliability.ReliableWorker.replay_window`);
  - ``degrade_channel`` (``loss_rate``) — degrade every live and
    future channel to the given loss rate.

:func:`parse_schedule` validates everything and raises
:class:`ValueError` naming the offending ``source:line``;
:func:`generate_schedule` is pure (same seed, same schedule, byte for
byte).  A :class:`ChaosController` injects due events into a
:class:`~repro.cluster.scheduler.ServingLoop` at the top of each tick;
``repro chaos``, ``repro bench chaos``, and the ``--schedule`` flag of
``repro serve`` / ``repro replay`` are the CLI surfaces.

>>> schedule = generate_schedule(seed=7, kills=2, shards=3, horizon=200)
>>> schedule == parse_schedule(schedule.to_jsonl())
True
>>> schedule.shard_kills >= 1
True
>>> parse_schedule('{"kind": "cheetah-chaos", "version": 99}')
Traceback (most recent call last):
    ...
ValueError: <schedule>:1: unsupported schedule version 99 (this parser reads version 1)
"""

from __future__ import annotations

import dataclasses
import json
import logging
import random
from typing import Dict, List, Optional

logger = logging.getLogger(__name__)

#: Newest format version this module writes and reads.
CHAOS_VERSION = 1

#: Versions :func:`parse_schedule` accepts.
SUPPORTED_VERSIONS = (1,)

#: The header's ``kind`` discriminator.
CHAOS_KIND = "cheetah-chaos"

#: Event kinds a schedule may carry, with their required operand field.
EVENT_OPERANDS = {
    "kill_shard": "shard",
    "restart": "shard",
    "kill_worker": "worker",
    "degrade_channel": "loss_rate",
}

#: Header keys the parser accepts (anything else is a format error).
_HEADER_KEYS = frozenset({"kind", "version", "seed", "shards", "workers"})

#: Event-record keys the parser accepts (per-kind operand rules apply).
_EVENT_KEYS = frozenset({"tick", "event", "shard", "worker", "loss_rate"})


class ChaosError(ValueError):
    """A failure schedule cannot be applied to this serving run."""


@dataclasses.dataclass(frozen=True)
class FailureEvent:
    """One timed failure: when, what, and the operand.

    Exactly one operand is set, matching the event kind (see
    :data:`EVENT_OPERANDS`); the others stay ``None`` and are omitted
    from the serialized record.
    """

    tick: int
    event: str
    shard: Optional[int] = None
    worker: Optional[int] = None
    loss_rate: Optional[float] = None

    def to_record(self) -> Dict:
        """The event as its JSON-lines record (plain dict)."""
        record: Dict = {"tick": self.tick, "event": self.event}
        if self.shard is not None:
            record["shard"] = self.shard
        if self.worker is not None:
            record["worker"] = self.worker
        if self.loss_rate is not None:
            record["loss_rate"] = self.loss_rate
        return record


@dataclasses.dataclass(frozen=True)
class FailureSchedule:
    """A parsed (or generated) failure schedule.

    ``seed`` is generator provenance; ``shards``/``workers`` record the
    topology the generator assumed (informational — the applying run's
    config is authoritative, and :class:`ChaosController` rejects
    events that don't fit it).
    """

    events: tuple
    seed: int = 0
    shards: Optional[int] = None
    workers: Optional[int] = None

    @property
    def kills(self) -> int:
        """Kill events (shard or worker) in the schedule."""
        return sum(1 for e in self.events
                   if e.event in ("kill_shard", "kill_worker"))

    @property
    def shard_kills(self) -> int:
        """``kill_shard`` events in the schedule."""
        return sum(1 for e in self.events if e.event == "kill_shard")

    @property
    def duration_ticks(self) -> int:
        """Tick of the last event (0 for an empty schedule)."""
        if not self.events:
            return 0
        return self.events[-1].tick

    def header(self) -> Dict:
        """The schedule's header record (plain dict)."""
        record: Dict = {
            "kind": CHAOS_KIND,
            "version": CHAOS_VERSION,
            "seed": self.seed,
        }
        if self.shards is not None:
            record["shards"] = self.shards
        if self.workers is not None:
            record["workers"] = self.workers
        return record

    def to_jsonl(self) -> str:
        """The schedule serialized as JSON lines (header first)."""
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines += [json.dumps(e.to_record(), sort_keys=True)
                  for e in self.events]
        return "\n".join(lines) + "\n"

    def save(self, path: str) -> str:
        """Write the schedule to ``path`` and return it."""
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_jsonl())
        return path


def _fail(source: str, line_no: int, message: str) -> None:
    raise ValueError(f"{source}:{line_no}: {message}")


def _require_int(record: Dict, key: str, source: str, line_no: int,
                 minimum: int, default: Optional[int] = None) -> int:
    value = record.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        _fail(source, line_no, f"{key!r} must be an integer, "
                               f"got {value!r}")
    if value < minimum:
        _fail(source, line_no, f"{key!r} must be >= {minimum}, "
                               f"got {value}")
    return value


def _parse_header(record: Dict, source: str, line_no: int):
    if record.get("kind") != CHAOS_KIND:
        _fail(source, line_no,
              f"first line must be the schedule header with "
              f"\"kind\": \"{CHAOS_KIND}\", got kind={record.get('kind')!r}")
    version = record.get("version")
    if not isinstance(version, int) or isinstance(version, bool):
        _fail(source, line_no, f"\"version\" must be an integer, "
                               f"got {version!r}")
    if version not in SUPPORTED_VERSIONS:
        _fail(source, line_no,
              f"unsupported schedule version {version} (this parser "
              f"reads version {SUPPORTED_VERSIONS[-1]})")
    unknown = sorted(set(record) - _HEADER_KEYS)
    if unknown:
        _fail(source, line_no,
              f"unknown header field(s): {', '.join(unknown)}")
    seed = _require_int(record, "seed", source, line_no, minimum=0,
                        default=0)
    shards = record.get("shards")
    if shards is not None:
        shards = _require_int(record, "shards", source, line_no,
                              minimum=1)
    workers = record.get("workers")
    if workers is not None:
        workers = _require_int(record, "workers", source, line_no,
                               minimum=1)
    return seed, shards, workers


def _parse_event(record: Dict, source: str, line_no: int,
                 last_tick: int, dead: set) -> FailureEvent:
    unknown = sorted(set(record) - _EVENT_KEYS)
    if unknown:
        _fail(source, line_no,
              f"unknown event field(s): {', '.join(unknown)}")
    kind = record.get("event")
    if kind not in EVENT_OPERANDS:
        _fail(source, line_no,
              f"unknown event kind {kind!r} (expected one of: "
              f"{', '.join(sorted(EVENT_OPERANDS))})")
    tick = _require_int(record, "tick", source, line_no, minimum=0)
    if tick < last_tick:
        _fail(source, line_no,
              f"event ticks must be non-decreasing: {tick} after "
              f"{last_tick} (sort the schedule by tick)")
    operand = EVENT_OPERANDS[kind]
    extra = sorted((set(record) & {"shard", "worker", "loss_rate"})
                   - {operand})
    if extra:
        _fail(source, line_no,
              f"{', '.join(repr(f) for f in extra)} "
              f"{'is not a field' if len(extra) == 1 else 'are not fields'}"
              f" of {kind!r} events (which take {operand!r})")
    if operand not in record:
        _fail(source, line_no,
              f"{kind!r} events need a {operand!r} field")
    shard = worker = loss_rate = None
    if operand == "shard":
        shard = _require_int(record, "shard", source, line_no, minimum=0)
        if kind == "kill_shard":
            if shard in dead:
                _fail(source, line_no,
                      f"shard {shard} is already dead here (restart it "
                      "before killing it again)")
            dead.add(shard)
        else:  # restart
            if shard not in dead:
                _fail(source, line_no,
                      f"shard {shard} is not dead here (restart must "
                      "follow its kill_shard)")
            dead.discard(shard)
    elif operand == "worker":
        worker = _require_int(record, "worker", source, line_no,
                              minimum=0)
    else:
        loss_rate = record.get("loss_rate")
        if not isinstance(loss_rate, (int, float)) \
                or isinstance(loss_rate, bool) \
                or not 0.0 <= loss_rate < 1.0:
            _fail(source, line_no, f"\"loss_rate\" must be a number in "
                                   f"[0, 1), got {loss_rate!r}")
        loss_rate = float(loss_rate)
    return FailureEvent(tick=tick, event=kind, shard=shard,
                        worker=worker, loss_rate=loss_rate)


def parse_schedule(text: str,
                   source: str = "<schedule>") -> FailureSchedule:
    """Parse and validate JSON-lines failure schedule ``text``.

    Every diagnostic is a :class:`ValueError` whose message starts with
    ``source:line`` so a bad line is directly addressable.  Blank lines
    are permitted (and keep their line numbers); the header must be the
    first non-blank line.  Cross-event consistency is checked too:
    killing an already-dead shard, or restarting a shard that was never
    killed, is a format error.
    """
    header = None
    events: List[FailureEvent] = []
    last_tick = 0
    dead: set = set()
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            _fail(source, line_no, f"malformed JSON ({error.msg} at "
                                   f"column {error.colno})")
        if not isinstance(record, dict):
            _fail(source, line_no, "every schedule line must be a JSON "
                                   f"object, got {type(record).__name__}")
        if header is None:
            header = _parse_header(record, source, line_no)
            continue
        event = _parse_event(record, source, line_no,
                             last_tick=last_tick, dead=dead)
        last_tick = event.tick
        events.append(event)
    if header is None:
        _fail(source, 1, "empty schedule: expected a header line "
                         f"({{\"kind\": \"{CHAOS_KIND}\", \"version\": "
                         f"{CHAOS_VERSION}}})")
    seed, shards, workers = header
    return FailureSchedule(events=tuple(events), seed=seed,
                           shards=shards, workers=workers)


def load_schedule(path: str) -> FailureSchedule:
    """Read and validate the JSON-lines failure schedule at ``path``."""
    with open(path, encoding="utf-8") as f:
        return parse_schedule(f.read(), source=path)


def generate_schedule(seed: int = 0, kills: int = 1, *,
                      shards: int = 2, workers: int = 4,
                      horizon: int = 240, restart: bool = True,
                      degrade_loss: Optional[float] = None,
                      ) -> FailureSchedule:
    """Synthesize a seeded ``kills``-event failure schedule.

    Kill events are spread across ``horizon`` ticks (size it to the
    run's expected makespan so kills land mid-query).  Even-numbered
    kills crash a live switch shard — so any schedule with
    ``kills >= 1`` and ``shards >= 2`` injects at least one shard kill
    — and are followed by a ``restart`` before the next kill (unless
    ``restart=False``, which leaves the pipeline down); odd-numbered
    kills crash a worker.  ``degrade_loss`` prepends a
    ``degrade_channel`` event.  Generation is deterministic: same
    arguments, same schedule, byte for byte.
    """
    if kills < 0:
        raise ValueError(f"kills must be >= 0, got {kills}")
    if seed < 0:
        # The format forbids negative seeds, so a negative seed here
        # would generate a schedule our own parser rejects.
        raise ValueError(f"seed must be >= 0, got {seed}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    if degrade_loss is not None and not 0.0 <= degrade_loss < 1.0:
        raise ValueError(
            f"degrade_loss must be in [0, 1), got {degrade_loss}")
    # Decorrelate from the trace generators with a *stable* salt (never
    # hash(): string hashing is randomized per interpreter run).
    salt = sum(ord(ch) * 131 ** i for i, ch in enumerate("chaos"))
    rng = random.Random((seed * 2654435761 + salt) % (1 << 62))
    events: List[FailureEvent] = []
    clock = 0
    if degrade_loss is not None:
        clock = max(1, horizon // 20)
        events.append(FailureEvent(tick=clock, event="degrade_channel",
                                   loss_rate=degrade_loss))
    stride = max(3, horizon // (kills + 1))
    for index in range(kills):
        clock += max(2, stride // 2) + rng.randrange(max(1, stride // 2))
        if index % 2 == 0 and shards > 1:
            victim = rng.randrange(shards)
            events.append(FailureEvent(tick=clock, event="kill_shard",
                                       shard=victim))
            if restart:
                # Recovery strictly before the next kill can land.
                recovery = 1 + rng.randrange(max(1, stride // 3))
                events.append(FailureEvent(tick=clock + recovery,
                                           event="restart",
                                           shard=victim))
        else:
            events.append(FailureEvent(tick=clock, event="kill_worker",
                                       worker=rng.randrange(workers)))
    return FailureSchedule(events=tuple(events), seed=seed,
                           shards=shards, workers=workers)


class ChaosController:
    """Applies a :class:`FailureSchedule` to a live serving loop.

    The :class:`~repro.cluster.scheduler.ServingLoop` calls
    :meth:`apply_due` at the top of every tick; events whose tick has
    arrived are applied exactly once, in schedule order, against the
    loop's shared frontend and active transfers.  Application is a
    deterministic function of the schedule and the admitted specs —
    chaos runs replay tick for tick.  Telemetry (migrations, recovery
    ticks, replayed packets) accumulates on the controller and is
    summarized by :meth:`summary` for ``repro chaos`` and
    ``repro bench chaos``.

    A schedule that does not fit the run raises :class:`ChaosError`:
    ``kill_shard`` against an unsharded frontend or an out-of-range /
    already-dead / last-live shard, ``kill_worker`` beyond the config's
    worker count.
    """

    def __init__(self, schedule: FailureSchedule):
        self.schedule = schedule
        self._pending: List[FailureEvent] = list(schedule.events)
        #: Applied-event records (schedule fields + effect counters).
        self.applied: List[Dict] = []
        self.migrations = 0
        self.restored = 0
        self.replayed_packets = 0
        self.recovery_ticks = 0
        self._kill_ticks: Dict[int, int] = {}

    @property
    def pending(self) -> int:
        """Events whose tick has not arrived yet."""
        return len(self._pending)

    def apply_due(self, tick: int, loop) -> List[Dict]:
        """Apply every event with ``event.tick <= tick``, in order."""
        applied: List[Dict] = []
        while self._pending and self._pending[0].tick <= tick:
            event = self._pending.pop(0)
            applied.append(self._apply(event, tick, loop))
        return applied

    def _sharded(self, loop, event: FailureEvent):
        frontend = loop.frontend
        if not hasattr(frontend, "kill_shard"):
            raise ChaosError(
                f"{event.event} at tick {event.tick} needs a sharded "
                "frontend: run with shards >= 2")
        return frontend

    def _apply(self, event: FailureEvent, tick: int, loop) -> Dict:
        record = dict(event.to_record())
        record["applied_tick"] = tick
        if event.event == "kill_shard":
            frontend = self._sharded(loop, event)
            try:
                migrated = frontend.kill_shard(event.shard)
            except ValueError as error:
                raise ChaosError(
                    f"cannot apply kill_shard at tick {tick}: {error}"
                ) from None
            self.migrations += migrated
            self._kill_ticks[event.shard] = tick
            record["migrated_queries"] = migrated
        elif event.event == "restart":
            frontend = self._sharded(loop, event)
            try:
                restored = frontend.restart_shard(event.shard)
            except ValueError as error:
                raise ChaosError(
                    f"cannot apply restart at tick {tick}: {error}"
                ) from None
            self.restored += restored
            killed_at = self._kill_ticks.pop(event.shard, None)
            if killed_at is not None:
                record["recovery_ticks"] = tick - killed_at
                self.recovery_ticks += tick - killed_at
            record["restored_queries"] = restored
        elif event.event == "kill_worker":
            if event.worker >= loop.config.workers:
                raise ChaosError(
                    f"kill_worker at tick {tick} names worker "
                    f"{event.worker} but the run has only "
                    f"{loop.config.workers} workers")
            replayed = 0
            for run in loop.active:
                transfer = run.current
                if transfer is None or not transfer.workers:
                    continue
                # Map the dead worker index onto this transfer's flows
                # (a drain pass may carry fewer flows than workers).
                fids = sorted(transfer.workers)
                fid = fids[event.worker % len(fids)]
                replayed += transfer.workers[fid].replay_window()
            self.replayed_packets += replayed
            record["replayed_packets"] = replayed
        else:  # degrade_channel
            touched = 0
            for run in (loop.pending + loop.waiting
                        + loop.suspended + loop.active):
                run.sim.config.loss_rate = event.loss_rate
                touched += 1
                transfer = run.current
                if transfer is not None:
                    transfer.degrade(event.loss_rate)
            record["tenants_degraded"] = touched
        self.applied.append(record)
        logger.info("applied %s at tick %d", event.event, tick)
        return record

    def summary(self) -> Dict:
        """Deterministic, JSON-serializable telemetry of the run."""
        return {
            "events": len(self.schedule.events),
            "applied": len(self.applied),
            "pending": self.pending,
            "migrations": self.migrations,
            "restored": self.restored,
            "replayed_packets": self.replayed_packets,
            "recovery_ticks": self.recovery_ticks,
            "timeline": list(self.applied),
        }
