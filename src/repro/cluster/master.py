"""CMaster: collect forwarded packets and complete the query.

The CMaster receives the pruned packet stream, converts packets back to
row form, and hands the data to the unchanged query engine — "the Spark
master works in the same way with and without Cheetah" (§3).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cluster.worker import decode_numeric
from repro.db.executor import ExecutionResult, execute
from repro.db.queries import Query
from repro.db.table import Table
from repro.net.packet import CheetahPacket


class CMaster:
    """The master's Cheetah module."""

    def __init__(self):
        self._by_flow: Dict[int, List[Tuple[int, ...]]] = {}
        self._fins: set = set()

    def receive(self, packet: CheetahPacket) -> None:
        """Accept one forwarded packet."""
        if packet.is_fin:
            self._fins.add(packet.fid)
            return
        self._by_flow.setdefault(packet.fid, []).append(packet.values)

    def receive_batch(self, packets: Sequence[CheetahPacket]) -> None:
        """Accept a batch of forwarded packets (hoisted receive loop —
        the master-side counterpart of the batched dataplane)."""
        by_flow = self._by_flow
        fins = self._fins
        for packet in packets:
            if packet.is_fin:
                fins.add(packet.fid)
            else:
                by_flow.setdefault(packet.fid, []).append(packet.values)

    def absorb(self, other: "CMaster") -> None:
        """Merge another master module's received state into this one.

        The multi-switch merge: with entries sharded across K switch
        pipelines, each pipe's forwarded stream can be collected
        per-shard and folded into a single master before query
        completion.  Flow order within a shard is preserved; flows are
        merged by fid.
        """
        for fid, entries in other._by_flow.items():
            self._by_flow.setdefault(fid, []).extend(entries)
        self._fins |= other._fins

    def all_fins(self, fids: Sequence[int]) -> bool:
        """Whether every worker signalled end-of-stream."""
        return all(fid in self._fins for fid in fids)

    def received_entries(self, fid: int = None) -> List[Tuple[int, ...]]:
        """Raw wire entries, one flow or all flows interleaved."""
        if fid is not None:
            return list(self._by_flow.get(fid, []))
        merged: List[Tuple[int, ...]] = []
        for flow in sorted(self._by_flow):
            merged.extend(self._by_flow[flow])
        return merged

    def to_table(self, name: str, columns: Sequence[str],
                 numeric: Sequence[bool] = None) -> Table:
        """Rebuild a (numeric) metadata table from the received entries.

        ``numeric[i]`` says whether column ``i`` was fixed-point encoded
        (decode it) or a fingerprint (keep the raw word).
        """
        entries = self.received_entries()
        if numeric is None:
            numeric = [True] * len(columns)
        rows = []
        for values in entries:
            if len(values) != len(columns):
                raise ValueError(
                    f"entry has {len(values)} values, expected "
                    f"{len(columns)}"
                )
            row = {}
            for col, value, is_num in zip(columns, values, numeric):
                row[col] = decode_numeric(value) if is_num else value
            rows.append(row)
        if not rows:
            raise ValueError("no entries received; cannot build a table")
        return Table.from_rows(name, rows)

    def complete(self, query: Query, table: Table) -> ExecutionResult:
        """Run the unchanged query on the pruned data."""
        return execute(query, table)

    def reset(self) -> None:
        """Clear per-query state."""
        self._by_flow.clear()
        self._fins.clear()
