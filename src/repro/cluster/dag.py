"""DAG-of-workers pruning (§9).

Large deployments plan queries as a DAG of worker stages; Cheetah runs
pruning on *every edge* where data moves between stages, each edge with
its own flow id and its own slice of switch resources (packed with the
§6 mechanism).  This module models such a plan: nodes transform entry
streams, edges optionally carry a pruner, and execution walks the DAG in
topological order while accounting per-edge traffic.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.base import PruningAlgorithm

#: A stage transform: list of input entry streams -> output entry stream.
StageFn = Callable[[List[list]], list]


@dataclasses.dataclass
class DagNode:
    """One worker stage."""

    name: str
    transform: StageFn


@dataclasses.dataclass
class DagEdge:
    """Data movement between stages, optionally pruned in-network."""

    src: str
    dst: str
    pruner: Optional[PruningAlgorithm] = None
    sent: int = 0
    delivered: int = 0

    @property
    def pruned(self) -> int:
        """Entries removed on this edge."""
        return self.sent - self.delivered


class WorkerDag:
    """A query plan as a DAG with per-edge in-network pruning."""

    def __init__(self):
        self._nodes: Dict[str, DagNode] = {}
        self._edges: List[DagEdge] = []

    def add_node(self, name: str, transform: StageFn = None) -> None:
        """Add a stage; the default transform concatenates its inputs."""
        if name in self._nodes:
            raise ValueError(f"duplicate node {name!r}")
        if transform is None:
            def transform(inputs):
                return [entry for stream in inputs for entry in stream]
        self._nodes[name] = DagNode(name, transform)

    def add_edge(self, src: str, dst: str,
                 pruner: Optional[PruningAlgorithm] = None) -> DagEdge:
        """Connect ``src -> dst``; a pruner makes the edge a Cheetah edge."""
        for name in (src, dst):
            if name not in self._nodes:
                raise KeyError(f"unknown node {name!r}")
        edge = DagEdge(src=src, dst=dst, pruner=pruner)
        self._edges.append(edge)
        return edge

    def _topological_order(self) -> List[str]:
        indegree = {name: 0 for name in self._nodes}
        for edge in self._edges:
            indegree[edge.dst] += 1
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: List[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for edge in self._edges:
                if edge.src == name:
                    indegree[edge.dst] -= 1
                    if indegree[edge.dst] == 0:
                        ready.append(edge.dst)
        if len(order) != len(self._nodes):
            raise ValueError("the worker graph contains a cycle")
        return order

    def run(self, sources: Dict[str, list]) -> Dict[str, list]:
        """Execute the DAG.

        ``sources`` maps source-node names to their input streams.
        Returns every node's output stream; per-edge traffic is recorded
        on the :class:`DagEdge` objects.
        """
        outputs: Dict[str, list] = {}
        for name in self._topological_order():
            incoming = [e for e in self._edges if e.dst == name]
            if not incoming:
                inputs = [list(sources.get(name, []))]
            else:
                inputs = []
                for edge in incoming:
                    stream = list(outputs[edge.src])
                    edge.sent += len(stream)
                    if edge.pruner is not None:
                        stream = [
                            entry for entry in stream
                            if not edge.pruner.offer(entry)
                        ]
                    edge.delivered += len(stream)
                    inputs.append(stream)
            outputs[name] = self._nodes[name].transform(inputs)
        return outputs

    def edges(self) -> Sequence[DagEdge]:
        """All edges with their traffic counters."""
        return tuple(self._edges)

    def total_pruned(self) -> int:
        """Entries removed across all Cheetah edges."""
        return sum(edge.pruned for edge in self._edges)
