"""Distributed execution model: workers, master, Spark baseline, timing.

The paper's testbed (five 2-core Spark workers + one master behind a
Tofino, DPDK CWorkers at ~10-12 Mpps, NICs restricted to 10/20G) is not
available; this package substitutes an analytic cost model calibrated to
the rates the paper itself reports, plus functional CWorker/CMaster
implementations that really serialize entries to the wire format.

Absolute seconds are not expected to match the testbed; the *shape* —
who wins, by what factor, where the network becomes the bottleneck — is
governed by the calibrated rates (see EXPERIMENTS.md).
"""

from repro.cluster.costmodel import (
    CostModel,
    HARDWARE_PROFILES,
    TimingBreakdown,
)
from repro.cluster.worker import CWorker, encode_value, decode_numeric
from repro.cluster.master import CMaster
from repro.cluster.spark import SparkBaseline, SparkReport
from repro.cluster.runtime import CheetahRuntime, CheetahReport
from repro.cluster.simulation import (
    SimulationConfig,
    SimulationError,
    SimulationReport,
    SCENARIOS,
    build_scenario,
)
from repro.cluster.qos import (
    DeficitRoundRobin,
    PriorityClass,
    QosPolicy,
    fifo_policy,
    parse_policy,
    tiers_policy,
)
from repro.cluster.scheduler import (
    QueryScheduler,
    ScheduleReport,
    SchedulerConfig,
    TenantReport,
    TenantSpec,
    tenant_specs,
)
from repro.cluster.events import (
    QueueReport,
    simulate_master_queue,
    simulate_master_queue_events,
    blocking_vs_unpruned,
)
from repro.cluster.dag import DagEdge, DagNode, WorkerDag


def __getattr__(name: str):
    """Deprecation shim (PEP 562): driving :class:`ClusterSimulation`
    directly from application code is superseded by the stable facade
    ``repro.api`` (``Session``/``submit``/``run_scenario``).  The old
    name keeps working — with a :class:`DeprecationWarning` — and the
    canonical import ``repro.cluster.simulation.ClusterSimulation``
    stays warning-free for internal and test code."""
    if name == "ClusterSimulation":
        import warnings

        warnings.warn(
            "importing ClusterSimulation from repro.cluster is "
            "deprecated; use the stable facade repro.api "
            "(Session/submit/run_scenario), or import it from "
            "repro.cluster.simulation if you really need the driver",
            DeprecationWarning, stacklevel=2)
        from repro.cluster.simulation import ClusterSimulation

        return ClusterSimulation
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CostModel",
    "HARDWARE_PROFILES",
    "TimingBreakdown",
    "CWorker",
    "encode_value",
    "decode_numeric",
    "CMaster",
    "SparkBaseline",
    "SparkReport",
    "CheetahRuntime",
    "CheetahReport",
    "ClusterSimulation",
    "SimulationConfig",
    "SimulationError",
    "SimulationReport",
    "SCENARIOS",
    "build_scenario",
    "DeficitRoundRobin",
    "PriorityClass",
    "QosPolicy",
    "fifo_policy",
    "parse_policy",
    "tiers_policy",
    "QueryScheduler",
    "ScheduleReport",
    "SchedulerConfig",
    "TenantReport",
    "TenantSpec",
    "tenant_specs",
    "QueueReport",
    "simulate_master_queue",
    "simulate_master_queue_events",
    "blocking_vs_unpruned",
    "DagEdge",
    "DagNode",
    "WorkerDag",
]
