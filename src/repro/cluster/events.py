"""Discrete-event simulation of the master's receive queue.

The analytic cost model prices the master's backlog with a fluid
approximation (arrivals at the stream rate, service at the per-op rate,
drain the residue).  This module simulates the same system event by
event — packet arrivals spaced by the wire, a single server with a FIFO
queue — so tests can check the closed form against a mechanistic model,
and Figure 9's super-linear blocking shape can be reproduced two ways.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Iterable, List, Optional, Tuple


@dataclasses.dataclass
class QueueReport:
    """Outcome of one simulated receive phase."""

    stream_seconds: float
    completion_seconds: float
    max_queue_depth: int
    served: int

    @property
    def blocking_seconds(self) -> float:
        """Time the master kept working after the stream ended."""
        return max(0.0, self.completion_seconds - self.stream_seconds)


def simulate_master_queue(arrivals: int, arrival_rate: float,
                          service_rate: float) -> QueueReport:
    """Simulate ``arrivals`` entries at ``arrival_rate`` into a single
    server at ``service_rate`` (both entries/second, deterministic
    spacing — the DPDK pipeline is paced, not Poisson).
    """
    if arrivals < 0:
        raise ValueError(f"arrivals must be >= 0, got {arrivals}")
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    if arrivals == 0:
        return QueueReport(0.0, 0.0, 0, 0)
    inter_arrival = 1.0 / arrival_rate
    service_time = 1.0 / service_rate
    clock = 0.0
    server_free_at = 0.0
    queue_depth = 0
    max_depth = 0
    # Deterministic D/D/1: we can walk arrivals directly.
    for i in range(arrivals):
        clock = i * inter_arrival
        start = max(clock, server_free_at)
        server_free_at = start + service_time
        queue_depth = max(0, round((server_free_at - clock) / service_time))
        max_depth = max(max_depth, queue_depth)
    stream_seconds = (arrivals - 1) * inter_arrival
    return QueueReport(
        stream_seconds=stream_seconds,
        completion_seconds=server_free_at,
        max_queue_depth=max_depth,
        served=arrivals,
    )


@dataclasses.dataclass(order=True)
class _Event:
    time: float
    kind: int          # 0 = arrival, 1 = departure
    payload: int = 0


def simulate_master_queue_events(arrival_times: Iterable[float],
                                 service_rate: float) -> QueueReport:
    """General event-driven variant accepting arbitrary arrival times
    (used to study bursty schedules, e.g. several workers synchronizing).
    """
    if service_rate <= 0:
        raise ValueError("service_rate must be positive")
    times = sorted(arrival_times)
    if not times:
        return QueueReport(0.0, 0.0, 0, 0)
    service_time = 1.0 / service_rate
    events: List[_Event] = [_Event(t, 0) for t in times]
    heapq.heapify(events)
    queue = 0
    busy_until = 0.0
    max_depth = 0
    served = 0
    completion = 0.0
    while events:
        event = heapq.heappop(events)
        if event.kind == 0:
            if event.time >= busy_until and queue == 0:
                busy_until = event.time + service_time
                heapq.heappush(events, _Event(busy_until, 1))
            else:
                queue += 1
                max_depth = max(max_depth, queue)
        else:
            served += 1
            completion = event.time
            if queue > 0:
                queue -= 1
                busy_until = event.time + service_time
                heapq.heappush(events, _Event(busy_until, 1))
    return QueueReport(
        stream_seconds=times[-1] - times[0],
        completion_seconds=completion,
        max_queue_depth=max_depth,
        served=served,
    )


def blocking_vs_unpruned(total_entries: int, stream_seconds: float,
                         service_rate: float,
                         unpruned_fractions: Iterable[float],
                         ) -> List[Tuple[float, float]]:
    """Figure 9 by simulation: (unpruned fraction, blocking seconds)."""
    out = []
    for fraction in unpruned_fractions:
        forwarded = round(total_entries * fraction)
        if forwarded == 0:
            out.append((fraction, 0.0))
            continue
        arrival_rate = forwarded / stream_seconds
        report = simulate_master_queue(forwarded, arrival_rate,
                                       service_rate)
        out.append((fraction, report.blocking_seconds))
    return out
