"""End-to-end cluster simulation: every layer engaged on one query.

:class:`ClusterSimulation` is the driver that turns the repository's
layers into one runnable distributed system (the paper's Figure 1):

1. tables are partitioned across :class:`~repro.cluster.worker.CWorker`
   instances, which serialize each row's relevant columns to 64-bit wire
   words (:func:`~repro.cluster.worker.encode_value`);
2. entries travel as :class:`~repro.net.packet.CheetahPacket` bytes over
   :class:`~repro.net.channel.LossyChannel` instances under the §7.2
   reliability protocol (worker retransmission windows, switch sequence
   tracking, switch ACKs for pruned packets);
3. the switch — a single :class:`~repro.switch.controlplane.ControlPlane`
   or a :class:`~repro.cluster.runtime.ShardedSwitchFrontend` across K
   simulated pipelines — makes the prune decision per entry;
4. the master collects the survivors and completes the unchanged query,
   and the report is checked against the functional ``QueryPlan.run``.

**Late materialization** (§2, §3): each data packet carries the entry's
*global row identifier* next to the encoded relevant columns.  The
switch decides on the encoded values; the master only needs the
surviving row ids — it fetches those rows (the Spark shuffle) and
completes the query on original values, exactly what ``QueryPlan.run``
does with ``table.take(keep)``.  That is why results are *identical*,
not merely approximate, despite the fixed-point wire encoding.

**Drive modes.**  With ``pipelined=True`` (default) the event loop
drains each tick's arrival batch and the switch decides the whole batch
with one ``offer_batch`` call
(:class:`~repro.net.reliability.BatchedSwitchForwarder`), reusing the
vectorized dataplane; workers keep producing — bounded by the
retransmission window — while the switch consumes.  With
``pipelined=False`` every packet dispatches individually through
:class:`~repro.net.reliability.SwitchForwarder`.  Both modes make
bit-identical prune decisions and identical channel RNG draws, so their
delivered streams match exactly; the wall-clock difference (recorded by
``repro bench e2e``) is pure dispatch overhead.

**Driver structure.**  Every per-query driver is a *generator*: it
yields :class:`TransferRequest` objects describing one reliable wire
pass and is resumed with the delivered entries.  ``ClusterSimulation``
satisfies each request synchronously (one pass at a time);
:class:`~repro.cluster.scheduler.QueryScheduler` steps many tenants'
drivers concurrently, interleaving their active passes through one
shared event loop and one shared switch frontend — see
``docs/SCHEDULER.md``.

**Quantization caveat** (documented in ``docs/WIRE_FORMAT.md``): numeric
columns ride the wire as Q43.20 biased fixed point.  Values that are
exact in 20 fractional bits (all integers, and e.g. ``2.5``) round-trip
losslessly; sub-quantum distinctions (< 2**-20) can collapse at the
switch.  Pruning stays *sound* for order-based operators (the encoding
is monotone and pruners use strict comparisons), but DISTINCT keys and
SKYLINE points closer than one quantum may be over-pruned, and SUM
aggregates of non-representable floats accumulate rounding.  The
scenario suite and the equivalence tests use representable values.
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cluster.runtime import (
    ShardedSwitchFrontend,
    ingress_capacity,
    shard_of,
)
from repro.cluster.worker import CWorker, decode_numeric, encode_value
from repro.core.expr import Col
from repro.core.groupby import GroupBySumAggregator
from repro.db.column import ColumnType
from repro.db.executor import ExecutionResult, execute
from repro.db.planner import QueryPlan, QueryPlanner, resolve_table
from repro.db.queries import (
    CompoundQuery,
    DistinctQuery,
    FilterQuery,
    GroupByQuery,
    HavingQuery,
    JoinQuery,
    Query,
    SkylineQuery,
    SortOrder,
    TopNQuery,
)
from repro.db.table import Table
from repro.net.channel import LossyChannel
from repro.net.congestion import RateController
from repro.net.reliability import (
    BatchedSwitchForwarder,
    MasterEndpoint,
    ReliableWorker,
    SwitchForwarder,
)
from repro.net.wire import decode_ack
from repro.switch.controlplane import ControlPlane

TableSet = Union[Table, Mapping[str, Table]]


class SimulationError(ValueError):
    """The query cannot be driven over the wire as configured."""


@dataclasses.dataclass
class SimulationConfig:
    """Knobs of one end-to-end run.

    ``window`` bounds each worker's unACKed packets in flight, which is
    also the per-flow bound on the batch the pipelined switch drains per
    tick.  ``pipelined`` selects the batched switch frontend; the
    per-packet path is the reference.  ``fid_base`` offsets every flow
    id this simulation stamps on the wire — the multi-tenant scheduler
    gives each tenant a disjoint fid range so concurrent tenants' flows
    are globally distinguishable.

    **Transport knobs** (``docs/CONGESTION.md``): ``congestion``
    selects the send schedule — ``"fixed"`` (the historical
    fill-the-window-every-tick behaviour, bit-identical to before the
    knob existed) or ``"aimd"`` (per-stream
    :class:`~repro.net.congestion.RateController` pacing).
    ``queue_capacity`` bounds each switch pipeline's ingress queue
    (``None`` = unbounded); the worker→switch channel tail-drops past
    the aggregate bound and feeds queue-depth signals back to AIMD
    senders.  ``rate_weight`` scales the AIMD additive increment —
    the scheduler maps each tenant's QoS-class weight here, so
    "interactive beats batch" holds at the transport layer too.
    Results are unchanged by all three knobs: the §7.2 protocol
    delivers every entry for any loss < 1, so only ticks and
    retransmission counts move.
    """

    workers: int = 4
    loss_rate: float = 0.0
    reorder_window: int = 0
    shards: int = 1
    seed: int = 0
    window: int = 32
    timeout_ticks: int = 8
    pipelined: bool = True
    max_ticks: int = 2_000_000
    fid_base: int = 0
    congestion: str = "fixed"
    queue_capacity: Optional[int] = None
    rate_weight: float = 1.0
    #: Run each installed query's shard pruners on a process pool
    #: (:class:`~repro.cluster.runtime.ProcessPoolShardExecutor`, K
    #: worker processes for K shards).  Decisions, results, and
    #: checkpoints are bit-identical to the serial facade; only
    #: wall-clock moves.  No effect with ``shards=1``.
    parallel_shards: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not 0 <= self.fid_base < (1 << 16):
            raise ValueError(
                f"fid_base must fit the 16-bit wire fid, got {self.fid_base}"
            )
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if self.reorder_window < 0:
            raise ValueError(
                f"reorder_window must be >= 0, got {self.reorder_window}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.congestion not in ("fixed", "aimd"):
            raise ValueError(
                f"congestion must be 'fixed' or 'aimd', "
                f"got {self.congestion!r}")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1 (or None for unbounded), "
                f"got {self.queue_capacity}")
        if self.rate_weight <= 0:
            raise ValueError(
                f"rate_weight must be > 0, got {self.rate_weight}")


@dataclasses.dataclass
class PassStats:
    """Protocol accounting for one wire pass."""

    name: str
    entries: int
    delivered: int
    ticks: int
    retransmissions: int
    switch_pruned: int
    switch_forwarded: int
    master_duplicates: int
    packets_sent: int
    packets_dropped: int


@dataclasses.dataclass
class SimulationReport:
    """Outcome of one end-to-end simulated execution."""

    result: ExecutionResult
    passes: List[PassStats]
    wall_seconds: float
    mode: str
    shards: int
    loss_rate: float
    reorder_window: int
    #: ``result == QueryPlan.run(...)``; ``None`` when ``check=False``.
    equivalent: Optional[bool] = None
    reference: Optional[ExecutionResult] = None

    @property
    def ticks(self) -> int:
        """Event-loop ticks summed over passes."""
        return sum(p.ticks for p in self.passes)

    @property
    def retransmissions(self) -> int:
        """Worker retransmissions summed over passes."""
        return sum(p.retransmissions for p in self.passes)

    @property
    def entries(self) -> int:
        """Unique entries offered to the wire across passes."""
        return sum(p.entries for p in self.passes)

    @property
    def delivered(self) -> int:
        """Entries that reached the master across passes."""
        return sum(p.delivered for p in self.passes)

    @property
    def switch_pruned(self) -> int:
        """Packets pruned (switch-ACKed) across passes."""
        return sum(p.switch_pruned for p in self.passes)

    @property
    def packets_dropped(self) -> int:
        """Channel-level drops across passes (loss events)."""
        return sum(p.packets_dropped for p in self.passes)


@dataclasses.dataclass
class TransferRequest:
    """Declarative description of one reliable wire pass.

    The per-query drivers are generators: instead of running a pass
    themselves they ``yield`` one of these and are resumed with the
    delivered entries per flow.  The solo :class:`ClusterSimulation`
    satisfies a request by stepping it to completion immediately; the
    multi-tenant :class:`~repro.cluster.scheduler.QueryScheduler`
    interleaves many tenants' active requests through one shared event
    loop, one tick per tenant per global tick.
    """

    name: str
    streams: Dict[int, List[Tuple[int, ...]]]
    entry_width: int
    scalar_fn: Callable
    batch_fn: Callable


class ActiveTransfer:
    """One in-flight wire pass, advanced one event-loop tick at a time.

    Bundles the per-pass protocol state — the three lossy channels, the
    reliable workers, the (batched) switch forwarder, and the master
    endpoint — behind a ``step()``/``done`` surface so the same
    machinery serves both drive styles: ``ClusterSimulation`` steps a
    single transfer until it completes, while the scheduler steps many
    concurrently, rotating the service order across tenants for
    fairness.
    """

    def __init__(self, request: TransferRequest, config: SimulationConfig,
                 salt: int):
        self.request = request
        self.config = config
        cfg = config
        # The worker->switch channel doubles as the (aggregate) switch
        # ingress queue: finite capacity tail-drops, and its depth is
        # the ECN-style signal fed back to AIMD senders each tick.
        self._ingress_bound = ingress_capacity(cfg.queue_capacity,
                                               cfg.shards)
        self.up = LossyChannel(cfg.loss_rate, cfg.reorder_window,
                               seed=salt + 1,
                               name=f"{request.name}:worker->switch",
                               capacity=self._ingress_bound)
        self.down = LossyChannel(cfg.loss_rate, cfg.reorder_window,
                                 seed=salt + 2,
                                 name=f"{request.name}:switch->master")
        self.acks = LossyChannel(cfg.loss_rate, cfg.reorder_window,
                                 seed=salt + 3, name=f"{request.name}:acks")
        self.controllers: Dict[int, RateController] = {}
        if cfg.congestion == "aimd":
            # Start at a quarter window per tick (the multiplicative
            # decreases find the queue's drain rate from above, like
            # slow-start overshoot) and recover one packet/tick per
            # acked window.
            self.controllers = {
                fid: RateController(weight=cfg.rate_weight,
                                    initial=max(1.0, cfg.window / 4),
                                    additive=1.0,
                                    cooldown=cfg.timeout_ticks)
                for fid in request.streams
            }
        self.workers = {
            fid: ReliableWorker(fid, entries,
                                timeout_ticks=cfg.timeout_ticks,
                                window=cfg.window,
                                controller=self.controllers.get(fid))
            for fid, entries in request.streams.items()
        }
        self._tail_drop_mark = 0
        if cfg.pipelined:
            self.switch = BatchedSwitchForwarder(
                request.scalar_fn, request.batch_fn,
                values_per_entry=request.entry_width)
        else:
            self.switch = SwitchForwarder(
                request.scalar_fn, values_per_entry=request.entry_width)
        self.master = MasterEndpoint()
        self.ticks = 0

    @property
    def done(self) -> bool:
        """All flows (including their FINs) are fully acknowledged."""
        return all(worker.done for worker in self.workers.values())

    def step(self) -> None:
        """Advance one tick: every worker retransmits timed-out packets
        and fills its window, the switch consumes the tick's arrivals
        (one ``offer_batch`` in pipelined mode, per-packet otherwise),
        the master ACKs, and ACKs drain back.  Loss and reordering apply
        independently on the worker->switch, switch->master, and ACK
        channels."""
        self.ticks += 1
        tick = self.ticks
        for worker in self.workers.values():
            worker.tick(tick, self.up)
        if self.controllers:
            # ECN-style feedback: observe the ingress queue after this
            # tick's sends, before the switch drains it.
            depth = self.up.pending()
            drops = self.up.tail_dropped - self._tail_drop_mark
            self._tail_drop_mark = self.up.tail_dropped
            for controller in self.controllers.values():
                controller.on_queue_signal(depth, self._ingress_bound,
                                           drops)
        arrivals = self.up.drain()
        if self.config.pipelined:
            self.switch.process_batch(arrivals, self.down, self.acks)
            self.master.process_batch(self.down.drain(), self.acks)
        else:
            for data in arrivals:
                self.switch.process(data, self.down, self.acks)
            for data in self.down.drain():
                self.master.process(data, self.acks)
        for data in self.acks.drain():
            ack = decode_ack(data)
            worker = self.workers.get(ack.fid)
            if worker is not None:
                worker.on_ack(ack)

    def degrade(self, loss_rate: float) -> None:
        """Chaos hook (``docs/CHAOS.md``): change the live channels'
        loss rate mid-pass.  The §7.2 protocol guarantees delivery for
        any loss < 1, so results are unchanged — only retransmissions
        and completion ticks move."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1), got {loss_rate}")
        for channel in (self.up, self.down, self.acks):
            channel.loss_rate = loss_rate

    def delivered(self) -> Dict[int, List[Tuple[int, ...]]]:
        """Entries that reached the master, per flow, in sequence order."""
        return {fid: self.master.received(fid)
                for fid in self.request.streams}

    def stats(self) -> PassStats:
        """Protocol accounting for the (completed) pass."""
        return PassStats(
            name=self.request.name,
            entries=sum(len(s) for s in self.request.streams.values()),
            delivered=sum(len(self.master.received(fid))
                          for fid in self.request.streams),
            ticks=self.ticks,
            retransmissions=sum(w.retransmissions
                                for w in self.workers.values()),
            switch_pruned=self.switch.pruned,
            switch_forwarded=self.switch.forwarded,
            master_duplicates=self.master.duplicates,
            packets_sent=self.up.sent + self.down.sent + self.acks.sent,
            packets_dropped=(self.up.dropped + self.down.dropped
                             + self.acks.dropped),
        )


def _surviving_ids(delivered: Dict[int, List[Tuple[int, ...]]],
                   index: int = 0) -> List[int]:
    """Sorted global row ids extracted from delivered entries."""
    ids = {int(values[index]) for flow in delivered.values()
           for values in flow}
    return sorted(ids)


_JOIN_SIDE = {0: "A", 1: "B"}


class ClusterSimulation:
    """Execute a planned query end-to-end through the real layers.

    ``run(query, tables)`` plans the query, drives it over the simulated
    cluster under this simulation's :class:`SimulationConfig`, and (by
    default) checks the result against the functional ``QueryPlan.run``
    path — the two must be *identical* for every supported query shape.

    Wire restrictions (each raises :class:`SimulationError` with the
    reason): string columns may only appear where a 64-bit fingerprint
    suffices — DISTINCT keys, GROUP BY / HAVING keys, and JOIN keys.
    FILTER predicates, ordering columns, SKYLINE dimensions, and SUM
    values must be numeric, because the switch has to parse them back
    from the fixed-point field; SUM/COUNT GROUP BY additionally needs a
    numeric key (the master must invert the key words to name the output
    groups).
    """

    def __init__(self, config: Optional[SimulationConfig] = None,
                 planner: Optional[QueryPlanner] = None,
                 frontend_factory: Optional[Callable[[], Any]] = None):
        self.config = config or SimulationConfig()
        self.planner = planner or QueryPlanner(seed=self.config.seed)
        #: When set, every driver uses this instead of building a fresh
        #: frontend — the multi-tenant scheduler injects a factory that
        #: returns the *shared* switch frontend, so concurrent tenants'
        #: queries pack into one data plane (§6).
        self.frontend_factory = frontend_factory
        self._pass_salt = 0

    # -- public entry ---------------------------------------------------------
    def run(self, query: Query, tables: TableSet,
            check: bool = True) -> SimulationReport:
        """Drive ``query`` over the simulated cluster.

        With ``check=True`` (default) the same plan is also executed
        functionally via ``QueryPlan.run`` and the two results compared;
        ``report.equivalent`` records the verdict.
        """
        self._pass_salt = 0
        plan = self.planner.plan(query)
        passes: List[PassStats] = []
        start = time.perf_counter()
        result = self._execute(plan, query, tables, passes)
        wall = time.perf_counter() - start
        equivalent = reference = None
        if check:
            reference = plan.run(tables)
            equivalent = result == reference.result
        return SimulationReport(
            result=result,
            passes=passes,
            wall_seconds=wall,
            mode="pipelined" if self.config.pipelined else "sequential",
            shards=self.config.shards,
            loss_rate=self.config.loss_rate,
            reorder_window=self.config.reorder_window,
            equivalent=equivalent,
            reference=None if reference is None else reference.result,
        )

    async def run_async(self, query: Query, tables: TableSet,
                        check: bool = True,
                        yield_every: int = 32) -> SimulationReport:
        """Asyncio-friendly :meth:`run`: identical results, same seeds.

        The transfer loop yields control to the event loop every
        ``yield_every`` protocol ticks (``await asyncio.sleep(0)``), so
        a long pass cannot starve other coroutines — this is the drive
        mode embedders (and :mod:`repro.serving`'s reactor pattern) use
        when a solo query must run inside a live event loop.  The tick
        domain is untouched: the report is byte-for-byte the one
        :meth:`run` returns, because yielding happens *between* ticks.
        """
        import asyncio

        if yield_every < 1:
            raise ValueError(
                f"yield_every must be >= 1, got {yield_every}")
        self._pass_salt = 0
        plan = self.planner.plan(query)
        passes: List[PassStats] = []
        gen = self._query_generator(plan, query, tables)
        start = time.perf_counter()
        value = None
        while True:
            try:
                request = gen.send(value)
            except StopIteration as stop:
                result = stop.value
                break
            active = self.begin_transfer(request)
            since_yield = 0
            while not active.done:
                if active.ticks >= self.config.max_ticks:
                    raise SimulationError(
                        f"pass {request.name!r} did not complete within "
                        f"{self.config.max_ticks} ticks (protocol "
                        "livelock?)"
                    )
                active.step()
                since_yield += 1
                if since_yield >= yield_every:
                    since_yield = 0
                    await asyncio.sleep(0)
            passes.append(active.stats())
            value = active.delivered()
        wall = time.perf_counter() - start
        equivalent = reference = None
        if check:
            reference = plan.run(tables)
            equivalent = result == reference.result
        return SimulationReport(
            result=result,
            passes=passes,
            wall_seconds=wall,
            mode="pipelined" if self.config.pipelined else "sequential",
            shards=self.config.shards,
            loss_rate=self.config.loss_rate,
            reorder_window=self.config.reorder_window,
            equivalent=equivalent,
            reference=None if reference is None else reference.result,
        )

    # -- dispatch -------------------------------------------------------------
    def _execute(self, plan: QueryPlan, query: Query, tables: TableSet,
                 passes: List[PassStats]) -> ExecutionResult:
        return self._drive(self._query_generator(plan, query, tables),
                           passes)

    def query_generator(self, query: Query, tables: TableSet):
        """Plan ``query`` and return its driver generator.

        The generator yields :class:`TransferRequest` objects and
        expects each pass's delivered entries sent back in; its return
        value (``StopIteration.value``) is the final
        :class:`~repro.db.executor.ExecutionResult`.  This is the
        scheduler-facing surface: ``QueryScheduler`` steps many of
        these concurrently over one shared switch frontend.
        """
        plan = self.planner.plan(query)
        return self._query_generator(plan, query, tables)

    def _query_generator(self, plan: QueryPlan, query: Query,
                         tables: TableSet):
        if isinstance(query, CompoundQuery):
            outputs = []
            for part in query.parts:
                part_plan = self.planner.plan(part)
                result = yield from self._query_generator(part_plan, part,
                                                          tables)
                outputs.append(result.output)
            return ExecutionResult(query=query, output=tuple(outputs))
        handler = _SIM_HANDLERS.get(type(query))
        if handler is None:
            raise SimulationError(
                f"no end-to-end driver for {type(query).__name__}"
            )
        return (yield from handler(self, plan, query, tables))

    def begin_transfer(self, request: TransferRequest) -> ActiveTransfer:
        """Fresh channels (deterministically re-salted per pass) and
        protocol state for ``request``; the caller steps it."""
        self._pass_salt += 1
        salt = self.config.seed * 7919 + self._pass_salt * 104729
        return ActiveTransfer(request, self.config, salt)

    def _drive(self, gen, passes: List[PassStats]) -> ExecutionResult:
        """Satisfy a driver generator's transfer requests synchronously."""
        value = None
        while True:
            try:
                request = gen.send(value)
            except StopIteration as stop:
                return stop.value
            value = self._run_transfer(request, passes)

    def _run_transfer(self, request: TransferRequest,
                      passes: List[PassStats],
                      ) -> Dict[int, List[Tuple[int, ...]]]:
        """Run one requested pass to completion (the solo drive mode)."""
        active = self.begin_transfer(request)
        while not active.done:
            if active.ticks >= self.config.max_ticks:
                raise SimulationError(
                    f"pass {request.name!r} did not complete within "
                    f"{self.config.max_ticks} ticks (protocol livelock?)"
                )
            active.step()
        passes.append(active.stats())
        return active.delivered()

    # -- shared plumbing ------------------------------------------------------
    def _frontend(self):
        """The switch frontend for one query driver: the shared one when
        a scheduler injected a factory, else a fresh control plane (or K
        sharded planes)."""
        if self.frontend_factory is not None:
            return self.frontend_factory()
        if self.config.shards > 1:
            return ShardedSwitchFrontend(self.planner.switch,
                                         self.config.shards,
                                         seed=self.planner.seed,
                                         parallel=self.config
                                         .parallel_shards)
        return ControlPlane(self.planner.switch, seed=self.planner.seed)

    def _cworkers(self, table: Table) -> List[Tuple[CWorker, int]]:
        """CWorkers over contiguous partitions, with global row offsets.

        Flow ids start at ``config.fid_base`` so concurrent tenants
        (which get disjoint bases from the scheduler) never collide on
        the wire."""
        out = []
        base = 0
        fid_base = self.config.fid_base
        for i, part in enumerate(table.partition(self.config.workers)):
            out.append((CWorker(i, part, fid=fid_base + i), base))
            base += len(part)
        return out

    def _require_numeric(self, table: Table, columns: Sequence[str],
                         context: str) -> None:
        for column in columns:
            if table.column(column).ctype is ColumnType.STR:
                raise SimulationError(
                    f"{context}: column {column!r} is a string column and "
                    "cannot be decoded from its 64-bit fingerprint at the "
                    "switch (only DISTINCT keys, GROUP BY/HAVING keys, "
                    "and JOIN keys may be strings on the wire)"
                )

    def _prune_adapters(self, frontend, fid: int,
                        to_entry: Callable[[Tuple[int, ...]], Any]):
        """(scalar, batch) prune functions mapping wire values to the
        installed pruner's entry shape."""
        def scalar(values):
            return frontend.offer(fid, to_entry(values))

        def batch(batch_values):
            return frontend.offer_batch(
                fid, [to_entry(values) for values in batch_values])

        return scalar, batch

    def _absorb_adapters(self, frontend, fid: int,
                         to_entry: Callable[[Tuple[int, ...]], Any]):
        """Adapters for passes the switch consumes entirely (JOIN pass 1:
        offer builds the filters, then the packet is switch-ACKed)."""
        def scalar(values):
            frontend.offer(fid, to_entry(values))
            return True

        def batch(batch_values):
            frontend.offer_batch(
                fid, [to_entry(values) for values in batch_values])
            return [True] * len(batch_values)

        return scalar, batch

    @staticmethod
    def _never_prune_adapters():
        return (lambda values: False,
                lambda batch_values: [False] * len(batch_values))

    def _transfer(self, name: str,
                  streams: Dict[int, List[Tuple[int, ...]]],
                  entry_width: int,
                  scalar_fn, batch_fn):
        """Yield one wire pass; the generator is resumed with the
        delivered entries per flow (see :class:`TransferRequest`)."""
        delivered = yield TransferRequest(
            name=name, streams=streams, entry_width=entry_width,
            scalar_fn=scalar_fn, batch_fn=batch_fn)
        return delivered

    def _single_pass(self, name: str, plan: QueryPlan,
                     table: Table, columns: Sequence[str],
                     to_entry: Callable[[Tuple[int, ...]], Any],
                     transforms: Optional[Mapping] = None):
        """The common single-pass flow: stream ``(row_id, columns...)``
        entries through the switch, return the surviving row ids.  The
        query's rules are uninstalled as soon as the pass completes,
        releasing its pack slot to concurrently served tenants."""
        frontend = self._frontend()
        installation = frontend.install_query(plan.spec)
        streams = {
            worker.fid: worker.indexed_entries(columns, base=base,
                                               transforms=transforms)
            for worker, base in self._cworkers(table)
        }
        scalar, batch = self._prune_adapters(frontend, installation.fid,
                                             to_entry)
        delivered = yield from self._transfer(name, streams,
                                              1 + len(columns),
                                              scalar, batch)
        frontend.uninstall_query(installation.fid)
        return _surviving_ids(delivered)

    # -- per-query drivers (generators; see TransferRequest) ------------------
    def _sim_filter(self, plan, query: FilterQuery, tables):
        table = resolve_table(tables, query.table)
        columns = list(query.relevant_columns())
        self._require_numeric(table, columns, "FILTER predicate")

        def to_row(values):
            return {column: decode_numeric(word)
                    for column, word in zip(columns, values[1:])}

        ids = yield from self._single_pass("filter", plan, table, columns,
                                           to_row)
        return execute(query, table.take(ids))

    def _sim_distinct(self, plan, query: DistinctQuery, tables):
        table = resolve_table(tables, query.table)
        columns = list(query.key_columns)
        if len(columns) == 1:
            def to_key(values):
                return values[1]
        else:
            def to_key(values):
                return tuple(values[1:])
        ids = yield from self._single_pass("distinct", plan, table,
                                           columns, to_key)
        return execute(query, table.take(ids))

    def _sim_topn(self, plan, query: TopNQuery, tables):
        table = resolve_table(tables, query.table)
        column = query.order_column
        self._require_numeric(table, [column], "TOP-N ordering")
        transforms = None
        if query.order is SortOrder.ASC:
            # The switch registers keep "largest seen"; ascending order
            # negates at the CWorker so the same program applies.
            transforms = {column: lambda value: -value}

        def to_value(values):
            return decode_numeric(values[1])

        ids = yield from self._single_pass("topn", plan, table, [column],
                                           to_value,
                                           transforms=transforms)
        return execute(query, table.take(ids))

    def _sim_skyline(self, plan, query: SkylineQuery, tables):
        table = resolve_table(tables, query.table)
        dimensions = list(query.dimensions)
        self._require_numeric(table, dimensions, "SKYLINE dimensions")

        def to_point(values):
            return tuple(decode_numeric(word) for word in values[1:])

        ids = yield from self._single_pass("skyline", plan, table,
                                           dimensions, to_point)
        return execute(query, table.take(ids))

    def _sim_groupby(self, plan, query: GroupByQuery, tables):
        if not query.switch_offloadable:
            return (yield from self._sim_groupby_sum(plan, query, tables))
        table = resolve_table(tables, query.table)
        self._require_numeric(table, [query.value_column],
                              "GROUP BY value")

        def to_entry(values):
            return (values[1], decode_numeric(values[2]))

        ids = yield from self._single_pass(
            "groupby", plan, table,
            [query.key_column, query.value_column], to_entry)
        return execute(query, table.take(ids))

    def _sim_groupby_sum(self, plan, query: GroupByQuery, tables):
        """SUM/COUNT GROUP BY: in-switch partial aggregation (§6).

        Every data packet is absorbed at the switch (and switch-ACKed,
        like a pruned packet).  Evicted partials go to a per-shard
        outbox that is merged by key, and a FIN-time *drain pass* —
        itself reliable, flow-per-shard — ships ``(key, partial)``
        entries to the master, which reconstructs the exact aggregate.
        Staging evictions in the outbox (rather than racing them down
        the lossy channel inside the victim packet) is what makes the
        aggregate loss-proof: a partial only leaves the switch under the
        ACK protocol.
        """
        table = resolve_table(tables, query.table)
        count_mode = query.aggregate == "count"
        self._require_numeric(table, [query.key_column],
                              "SUM/COUNT GROUP BY key")
        columns = [query.key_column]
        if not count_mode:
            self._require_numeric(table, [query.value_column],
                                  "GROUP BY SUM value")
            columns.append(query.value_column)
        shards = self.config.shards
        aggregators = [
            GroupBySumAggregator(rows=self.planner.scaled(4096, floor=1),
                                 width=8, count_mode=count_mode,
                                 seed=self.planner.seed)
            for _ in range(shards)
        ]
        outbox: List[Dict[Any, float]] = [{} for _ in range(shards)]
        route_seed = self.planner.seed

        def absorb(values) -> bool:
            key = values[1]
            amount = 1 if count_mode else decode_numeric(values[2])
            shard = 0 if shards == 1 else shard_of(key, shards, route_seed)
            evicted = aggregators[shard].offer(key, amount)
            if evicted is not None:
                evicted_key, partial = evicted
                box = outbox[shard]
                box[evicted_key] = box.get(evicted_key, 0) + partial
            return True

        streams = {
            worker.fid: worker.indexed_entries(columns, base=base)
            for worker, base in self._cworkers(table)
        }
        yield from self._transfer("groupby_sum", streams, 1 + len(columns),
                                  absorb, lambda vs: [absorb(v) for v in vs])
        # FIN-time drain: one reliable flow per shard streams the merged
        # partials (outbox + live matrix) to the master.
        drain_streams: Dict[int, List[Tuple[int, ...]]] = {}
        for shard in range(shards):
            merged = dict(outbox[shard])
            for key, partial in aggregators[shard].drain():
                merged[key] = merged.get(key, 0) + partial
            drain_streams[self.config.fid_base + shard] = [
                (key, encode_value(partial))
                for key, partial in merged.items()
            ]
        scalar, batch = self._never_prune_adapters()
        delivered = yield from self._transfer("groupby_sum:drain",
                                              drain_streams, 2,
                                              scalar, batch)
        totals: Dict[int, float] = {}
        for flow in delivered.values():
            for key_word, partial_word in flow:
                totals[key_word] = (totals.get(key_word, 0)
                                    + decode_numeric(partial_word))
        output = {
            decode_numeric(key_word): (int(total) if count_mode else total)
            for key_word, total in totals.items()
        }
        return ExecutionResult(query=query, output=output)

    def _sim_join(self, plan, query: JoinQuery, tables):
        if isinstance(tables, Table):
            raise SimulationError(
                "JOIN needs a mapping of table name -> Table")
        left = tables[query.left_table]
        right = tables[query.right_table]
        frontend = self._frontend()
        installation = frontend.install_query(plan.spec)
        fid = installation.fid
        sides = ((0, query.left_table, left, query.left_key),
                 (1, query.right_table, right, query.right_key))
        # Pass 1: stream both key columns to build the Bloom filters;
        # the switch consumes (and switch-ACKs) every packet.
        scalar, batch = self._absorb_adapters(
            frontend, fid, lambda values: (_JOIN_SIDE[values[0]],
                                           values[1]))
        for tag, table_name, table, key_column in sides:
            streams = self._join_streams(table, key_column, tag,
                                         with_ids=False)
            yield from self._transfer(f"join:pass1:{table_name}", streams,
                                      2, scalar, batch)
        frontend.pruner_for(fid).start_second_pass()
        # Pass 2: re-stream the prunable sides with row ids; survivors'
        # ids select the pruned tables (an OUTER side ships whole).
        scalar, batch = self._prune_adapters(
            frontend, fid, lambda values: (_JOIN_SIDE[values[0]],
                                           values[2]))
        prunable = query.prunable_sides
        kept: Dict[str, List[int]] = {}
        for tag, table_name, table, key_column in sides:
            if table_name not in prunable:
                kept[table_name] = list(range(len(table)))
                continue
            streams = self._join_streams(table, key_column, tag,
                                         with_ids=True)
            delivered = yield from self._transfer(
                f"join:pass2:{table_name}", streams, 3, scalar, batch)
            kept[table_name] = _surviving_ids(delivered, index=1)
        frontend.uninstall_query(fid)
        pruned = {
            query.left_table: left.take(kept[query.left_table]),
            query.right_table: right.take(kept[query.right_table]),
        }
        return execute(query, pruned)

    def _join_streams(self, table: Table, key_column: str, tag: int,
                      with_ids: bool) -> Dict[int, List[Tuple[int, ...]]]:
        streams = {}
        for worker, base in self._cworkers(table):
            column = worker.partition.column(key_column)
            if with_ids:
                streams[worker.fid] = [
                    (tag, base + i, encode_value(column[i]))
                    for i in range(len(worker.partition))
                ]
            else:
                streams[worker.fid] = [
                    (tag, encode_value(column[i]))
                    for i in range(len(worker.partition))
                ]
        return streams

    def _sim_having(self, plan, query: HavingQuery, tables):
        table = resolve_table(tables, query.table)
        frontend = self._frontend()
        installation = frontend.install_query(plan.spec)
        count_mode = query.aggregate == "count"
        value_is_str = (table.column(query.value_column).ctype
                        is ColumnType.STR)
        if count_mode and value_is_str:
            # COUNT never reads the value; ship the key word alone.
            columns = [query.key_column]

            def to_entry(values):
                return (values[1], 0)
        else:
            self._require_numeric(table, [query.value_column],
                                  "HAVING value")
            columns = [query.key_column, query.value_column]

            def to_entry(values):
                return (values[1], decode_numeric(values[2]))

        streams = {
            worker.fid: worker.indexed_entries(columns, base=base)
            for worker, base in self._cworkers(table)
        }
        scalar, batch = self._prune_adapters(frontend, installation.fid,
                                             to_entry)
        delivered = yield from self._transfer("having:pass1", streams,
                                              1 + len(columns), scalar,
                                              batch)
        if query.aggregate in ("max", "min"):
            # Witness forwarding is exact: complete on the survivors.
            frontend.uninstall_query(installation.fid)
            return execute(query, table.take(_surviving_ids(delivered)))
        # SUM/COUNT: the switch sketch yields a candidate-key superset;
        # the partial second pass (§4.3) streams only those keys' rows
        # (matched by key word at the CWorker), unpruned, and the master
        # computes the exact aggregates on the fetched rows.
        candidates = frontend.pruner_for(installation.fid).candidate_keys()
        frontend.uninstall_query(installation.fid)
        second_streams: Dict[int, List[Tuple[int, ...]]] = {}
        for worker, base in self._cworkers(table):
            column = worker.partition.column(query.key_column)
            second_streams[worker.fid] = [
                (base + i,)
                for i in range(len(worker.partition))
                if encode_value(column[i]) in candidates
            ]
        scalar, batch = self._never_prune_adapters()
        delivered = yield from self._transfer("having:pass2",
                                              second_streams, 1,
                                              scalar, batch)
        return execute(query, table.take(_surviving_ids(delivered)))


_SIM_HANDLERS = {
    FilterQuery: ClusterSimulation._sim_filter,
    DistinctQuery: ClusterSimulation._sim_distinct,
    TopNQuery: ClusterSimulation._sim_topn,
    SkylineQuery: ClusterSimulation._sim_skyline,
    GroupByQuery: ClusterSimulation._sim_groupby,
    JoinQuery: ClusterSimulation._sim_join,
    HavingQuery: ClusterSimulation._sim_having,
}


# ---------------------------------------------------------------------------
# Scenario suite (CLI `repro run <scenario> --loss ...` and `bench e2e`)
# ---------------------------------------------------------------------------

def _synthetic_table(rows: int, seed: int, keys: Optional[int] = None,
                     value_hi: Optional[int] = None) -> Table:
    rng = random.Random(seed)
    keys = keys or max(2, rows // 20)
    value_hi = value_hi or max(4, rows)
    return Table.from_rows("T", [
        {"k": rng.randrange(keys), "v": rng.randrange(1, value_hi)}
        for _ in range(rows)
    ])


def _scenario_distinct(rows: int, seed: int):
    return (DistinctQuery(key_columns=("k",)),
            _synthetic_table(rows, seed))


def _scenario_filter(rows: int, seed: int):
    return (FilterQuery(predicate=Col("v") > max(2, rows // 2)),
            _synthetic_table(rows, seed))


def _scenario_topn(rows: int, seed: int):
    return (TopNQuery(n=10, order_column="v"),
            _synthetic_table(rows, seed, value_hi=1 << 18))


def _scenario_skyline(rows: int, seed: int):
    rng = random.Random(seed ^ 0x51)
    table = Table.from_rows("P", [
        {"x": rng.randrange(1000), "y": rng.randrange(1000)}
        for _ in range(rows)
    ])
    return SkylineQuery(dimensions=("x", "y")), table


def _scenario_groupby_max(rows: int, seed: int):
    return (GroupByQuery(key_column="k", value_column="v",
                         aggregate="max"),
            _synthetic_table(rows, seed))


def _scenario_groupby_sum(rows: int, seed: int):
    return (GroupByQuery(key_column="k", value_column="v",
                         aggregate="sum"),
            _synthetic_table(rows, seed, value_hi=100))


def _scenario_having_sum(rows: int, seed: int):
    table = _synthetic_table(rows, seed, value_hi=100)
    total = sum(table.column("v"))
    keys = max(2, rows // 20)
    # ~2x the mean per-key mass: a handful of keys qualify.
    threshold = 2.0 * total / keys
    return (HavingQuery(key_column="k", value_column="v",
                        threshold=threshold, aggregate="sum"),
            table)


def _scenario_join(rows: int, seed: int):
    rng = random.Random(seed ^ 0x10)
    key_space = max(4, rows // 2)
    left = Table.from_rows("L", [
        {"lk": rng.randrange(key_space), "lv": rng.randrange(1000)}
        for _ in range(rows)
    ])
    right = Table.from_rows("R", [
        {"rk": rng.randrange(2 * key_space), "rv": rng.randrange(1000)}
        for _ in range(max(2, rows // 2))
    ])
    query = JoinQuery(left_table="L", right_table="R",
                      left_key="lk", right_key="rk")
    return query, {"L": left, "R": right}


def _scenario_tpch_q3(rows: int, seed: int):
    """The TPC-H Q3 offload (§8.2): both joins over the filtered inputs,
    packed as one compound query; ``rows`` sizes the lineitem table."""
    from repro.workloads.tpch import (
        SF1_LINEITEMS,
        TPCHGenerator,
        q3_filtered_inputs,
        tpch_q3_queries,
    )

    scale = max(rows, 60) / SF1_LINEITEMS
    tables = q3_filtered_inputs(TPCHGenerator(scale=scale, seed=seed)
                                .tables())
    join_co, join_ol, _ = tpch_q3_queries()
    return CompoundQuery(parts=(join_co, join_ol)), tables


def _bigdata_tables(rows: int, seed: int):
    from repro.workloads.bigdata import BigDataGenerator, SAMPLE_USERVISITS_ROWS

    scale = max(rows, 20) / SAMPLE_USERVISITS_ROWS
    return BigDataGenerator(scale=scale, seed=seed).tables()


def _scenario_bigdata_q1(rows: int, seed: int):
    from repro.workloads.bigdata import benchmark_query

    return benchmark_query(1), _bigdata_tables(rows, seed)


def _scenario_bigdata_q2(rows: int, seed: int):
    from repro.workloads.bigdata import benchmark_query

    return benchmark_query(2), _bigdata_tables(rows, seed)


def _scenario_bigdata_q4(rows: int, seed: int):
    from repro.workloads.bigdata import benchmark_query

    return benchmark_query(4), _bigdata_tables(rows, seed)


#: Named end-to-end scenarios: name -> builder(rows, seed) -> (query,
#: tables).  ``repro run <name> --loss R --reorder W --shards K`` drives
#: any of these through the full stack.
SCENARIOS: Dict[str, Callable[[int, int], Tuple[Query, TableSet]]] = {
    "distinct": _scenario_distinct,
    "filter": _scenario_filter,
    "topn": _scenario_topn,
    "skyline": _scenario_skyline,
    "groupby_max": _scenario_groupby_max,
    "groupby_sum": _scenario_groupby_sum,
    "having_sum": _scenario_having_sum,
    "join": _scenario_join,
    "tpch_q3": _scenario_tpch_q3,
    "bigdata_q1": _scenario_bigdata_q1,
    "bigdata_q2": _scenario_bigdata_q2,
    "bigdata_q4": _scenario_bigdata_q4,
}


def build_scenario(name: str, rows: int = 1200,
                   seed: int = 0) -> Tuple[Query, TableSet]:
    """Instantiate a named scenario at roughly ``rows`` input rows."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise SimulationError(
            f"unknown scenario {name!r} "
            f"(available: {', '.join(sorted(SCENARIOS))})"
        ) from None
    if rows < 20:
        raise SimulationError(f"scenario needs rows >= 20, got {rows}")
    return builder(rows, seed)
