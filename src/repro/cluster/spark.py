"""Spark SQL baseline (no switch pruning).

Functionally the baseline runs the reference executor on the full data;
its completion time comes from the calibrated cost model: workers scan
and run the task over their partitions, ship (compressed, packed)
partial results, and the master merges.  First runs pay the paper's
observed cache/index/JIT penalty (§8.2.1); subsequent runs are faster.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Mapping, Optional, Union

from repro.cluster.costmodel import CostModel, TimingBreakdown
from repro.db.executor import ExecutionResult, execute
from repro.db.queries import CompoundQuery, JoinQuery, Query
from repro.db.table import Table

TableSet = Union[Table, Mapping[str, Table]]


@dataclasses.dataclass
class SparkReport:
    """One Spark run: result + timing."""

    result: ExecutionResult
    breakdown: TimingBreakdown
    first_run: bool

    @property
    def completion_seconds(self) -> float:
        """Total completion time."""
        return self.breakdown.total


def result_cardinality(output) -> int:
    """Number of result entries the master materialises/merges."""
    if output is None:
        return 0
    if isinstance(output, (int, float)):
        return 1
    if isinstance(output, Counter):
        return sum(output.values())
    if isinstance(output, (frozenset, set, dict, list, tuple)):
        return len(output)
    return 1


def total_input_entries(query: Query, tables: TableSet) -> int:
    """Entries the workers scan for ``query``."""
    if isinstance(query, JoinQuery):
        return len(tables[query.left_table]) + len(tables[query.right_table])
    if isinstance(tables, Table):
        return len(tables)
    if isinstance(query, CompoundQuery):
        return sum(total_input_entries(part, tables) for part in query.parts)
    name = getattr(query, "table", None)
    if name is not None:
        return len(tables[name])
    if len(tables) == 1:
        return len(next(iter(tables.values())))
    raise ValueError("ambiguous table set for a single-table query")


class SparkBaseline:
    """The no-pruning comparison system."""

    def __init__(self, cost_model: Optional[CostModel] = None,
                 workers: int = 5):
        self.cost_model = cost_model or CostModel()
        self.workers = workers

    def run(self, query: Query, tables: TableSet, first_run: bool = False,
            extrapolate_to_rows: Optional[int] = None) -> SparkReport:
        """Execute and time ``query``.

        ``extrapolate_to_rows`` reports the timing as if the input had
        that many rows (functional execution still uses the given data —
        the benches run sampled tables and extrapolate to paper scale).
        """
        if isinstance(query, CompoundQuery):
            return self._run_compound(query, tables, first_run,
                                      extrapolate_to_rows)
        result = execute(query, tables)
        actual = total_input_entries(query, tables)
        entries = extrapolate_to_rows or actual
        scale = entries / actual if actual else 1.0
        results = max(1, round(result_cardinality(result.output) * scale))
        breakdown = self.cost_model.spark_completion(
            op=query.query_type,
            total_entries=entries,
            workers=self.workers,
            result_entries=results,
            first_run=first_run,
        )
        return SparkReport(result=result, breakdown=breakdown,
                           first_run=first_run)

    def _run_compound(self, query: CompoundQuery, tables: TableSet,
                      first_run: bool,
                      extrapolate_to_rows: Optional[int]) -> SparkReport:
        """Sequential execution of the parts (Spark runs A then B)."""
        computation = network = other = 0.0
        outputs = []
        for part in query.parts:
            part_rows = None
            if extrapolate_to_rows is not None:
                share = (total_input_entries(part, tables)
                         / total_input_entries(query, tables))
                part_rows = round(extrapolate_to_rows * share)
            report = self.run(part, tables, first_run, part_rows)
            outputs.append(report.result.output)
            computation += report.breakdown.computation
            network += report.breakdown.network
            other += report.breakdown.other
        result = ExecutionResult(query=query, output=tuple(outputs))
        return SparkReport(
            result=result,
            breakdown=TimingBreakdown(computation, network, other),
            first_run=first_run,
        )
