"""CWorker: turn table partitions into Cheetah wire entries.

The CWorker intercepts the data flow at a Spark worker, extracts the
query-relevant columns, converts each row to 64-bit wire values (fixed
point for floats, fingerprints for strings — Example #8), and streams
one packet per entry (§7.1).
"""

from __future__ import annotations

from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple

from repro.db.table import Table
from repro.net.packet import CheetahPacket, packets_for_entries
from repro.sketches.hashing import fingerprint_bits

#: Fixed-point fraction bits for float columns on the wire.
FLOAT_FRACTION_BITS = 20
_FLOAT_SCALE = 1 << FLOAT_FRACTION_BITS
#: Bias so signed values map into the unsigned 64-bit wire space while
#: preserving order (the switch compares unsigned).
_SIGN_BIAS = 1 << 62


def encode_value(value: Any) -> int:
    """Encode one column value as an order-preserving 64-bit word.

    * ints/floats: biased fixed point (order preserved, so threshold and
      rolling-minimum comparisons on the switch are meaningful);
    * strings: a 64-bit fingerprint (equality only — ordering queries on
      strings are not switch-offloadable).

    Booleans are rejected even though ``bool`` is a subclass of ``int``:
    ``True`` would silently encode as the number ``1`` and round-trip
    through :func:`decode_numeric` as ``1.0``, masking a schema bug (the
    paper's wire format has no boolean column type — predicates on flags
    belong in the worker-side filter, not on the wire).

    >>> encode_value(0)
    4611686018427387904
    >>> decode_numeric(encode_value(-2.5))
    -2.5
    >>> encode_value(True)
    Traceback (most recent call last):
        ...
    TypeError: boolean columns are not part of the wire format
    """
    if isinstance(value, bool):
        raise TypeError("boolean columns are not part of the wire format")
    if isinstance(value, int):
        return _SIGN_BIAS + value * _FLOAT_SCALE
    if isinstance(value, float):
        return _SIGN_BIAS + round(value * _FLOAT_SCALE)
    if isinstance(value, str):
        return fingerprint_bits(value, 64)
    raise TypeError(f"cannot encode {type(value).__name__} for the wire")


def decode_numeric(word: int) -> float:
    """Invert :func:`encode_value` for numeric values."""
    return (word - _SIGN_BIAS) / _FLOAT_SCALE


class CWorker:
    """One worker's Cheetah module.

    ``fid`` is the flow id stamped on every packet this worker emits
    (16 bits on the wire).  It scopes all per-flow protocol state —
    switch sequence tracking, master deduplication — *and* selects the
    tenant's pruner inside a multi-query pack, so under multi-tenant
    serving each tenant's workers must use fids from that tenant's
    disjoint range (the scheduler assigns ``fid_base`` offsets; see
    ``SimulationConfig.fid_base``).
    """

    def __init__(self, worker_id: int, partition: Table, fid: int = None):
        self.worker_id = worker_id
        self.partition = partition
        self.fid = worker_id if fid is None else fid

    def entries(self, columns: Sequence[str]) -> List[Tuple[int, ...]]:
        """The wire entries for ``columns``, one per row."""
        cols = [self.partition.column(c) for c in columns]
        return [
            tuple(encode_value(col[i]) for col in cols)
            for i in range(len(self.partition))
        ]

    def indexed_entries(self, columns: Sequence[str], base: int = 0,
                        transforms: Optional[Mapping[str, Callable]] = None,
                        ) -> List[Tuple[int, ...]]:
        """Wire entries carrying a leading *row identifier* word.

        Late materialization (§2): the metadata stream ships
        ``(row_id, encoded relevant columns)`` so the master can fetch
        the full rows of surviving entries after pruning.  ``base`` is
        this partition's global row offset (partitions are contiguous),
        making the identifiers cluster-wide.  ``transforms`` optionally
        maps a column name to a callable applied to the raw value
        *before* encoding (e.g. negation for ascending TOP-N, so the
        switch's "keep the largest" registers implement "smallest").
        """
        cols = [self.partition.column(c) for c in columns]
        fns = [transforms.get(c) if transforms else None for c in columns]
        entries = []
        for i in range(len(self.partition)):
            words = tuple(
                encode_value(fn(col[i]) if fn is not None else col[i])
                for col, fn in zip(cols, fns)
            )
            entries.append((base + i,) + words)
        return entries

    def packets(self, columns: Sequence[str],
                per_packet: int = 1) -> List[CheetahPacket]:
        """The packet stream for ``columns`` (ends with FIN)."""
        return packets_for_entries(self.fid, self.entries(columns),
                                   per_packet=per_packet)

    def serialize_seconds(self, columns: Sequence[str],
                          rate: float = 10e6) -> float:
        """Time to serialize this partition at ``rate`` entries/s."""
        return len(self.partition) / rate

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CWorker(id={self.worker_id}, fid={self.fid}, "
            f"rows={len(self.partition)})"
        )
