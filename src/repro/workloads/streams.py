"""Synthetic streams for the pruning-rate simulations (Figs 10/11).

All generators are seeded and deterministic.  The analysis assumes
random-order streams (arbitrary values, random arrival order), which
:func:`random_order_stream` provides directly.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple


def random_order_stream(length: int, distinct: int,
                        seed: int = 0) -> List[int]:
    """A stream of ``length`` entries over ``distinct`` uniform keys,
    in random order — the Theorem 1/8 setting."""
    if length < 1:
        raise ValueError(f"length must be positive, got {length}")
    if distinct < 1:
        raise ValueError(f"distinct must be positive, got {distinct}")
    rng = random.Random(seed)
    # Guarantee every key appears at least once when length allows, then
    # fill uniformly; shuffle for random order.
    base = list(range(distinct))[:length]
    fill = [rng.randrange(distinct) for _ in range(length - len(base))]
    stream = base + fill
    rng.shuffle(stream)
    return stream


def zipf_keys(length: int, distinct: int, skew: float = 1.1,
              seed: int = 0) -> List[int]:
    """Zipf-distributed keys (heavy hitters), as in real column values
    (userAgent, languageCode).  ``skew`` is the Zipf exponent."""
    if skew <= 0:
        raise ValueError(f"skew must be positive, got {skew}")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** skew for rank in range(distinct)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    import bisect

    return [
        bisect.bisect_left(cumulative, rng.random()) for _ in range(length)
    ]


def distinct_stream(length: int, distinct: int, seed: int = 0,
                    values_are_wide: bool = False) -> List:
    """Stream for DISTINCT experiments; ``values_are_wide`` yields
    multi-part tuples to exercise the fingerprint path."""
    keys = random_order_stream(length, distinct, seed)
    if not values_are_wide:
        return keys
    return [(k, f"url-{k}.example.com", k * 17) for k in keys]


def random_points(length: int, dimensions: int = 2,
                  value_range: int = 1 << 16, seed: int = 0,
                  correlated: float = 0.0,
                  value_ranges: Sequence[int] = None) -> List[Tuple[int, ...]]:
    """Uniform D-dimensional integer points for SKYLINE experiments.

    ``value_ranges`` gives per-dimension ranges (the paper's motivating
    case for APH: one dimension 0-255, another 0-65535 — a SUM score is
    then dominated by the wide dimension).  ``correlated > 0`` mixes a
    shared component into all dimensions.
    """
    if not 0.0 <= correlated <= 1.0:
        raise ValueError(f"correlated must be in [0, 1], got {correlated}")
    if value_ranges is None:
        value_ranges = [value_range] * dimensions
    if len(value_ranges) != dimensions:
        raise ValueError(
            f"need {dimensions} ranges, got {len(value_ranges)}"
        )
    rng = random.Random(seed)
    points = []
    for _ in range(length):
        shared = rng.random()
        point = tuple(
            int((correlated * shared + (1 - correlated) * rng.random())
                * r)
            for r in value_ranges
        )
        points.append(point)
    return points


def value_stream(length: int, value_range: int = 1 << 20,
                 seed: int = 0) -> List[int]:
    """Uniform values for TOP-N experiments (random order by nature)."""
    rng = random.Random(seed)
    return [rng.randrange(1, value_range) for _ in range(length)]


def keyed_value_stream(length: int, distinct: int,
                       value_range: int = 1 << 16, skew: float = 1.1,
                       seed: int = 0) -> List[Tuple[int, int]]:
    """(key, value) pairs with Zipf keys — GROUP BY / HAVING workloads."""
    keys = zipf_keys(length, distinct, skew, seed)
    rng = random.Random(seed ^ 0x5A1AD)
    return [(k, rng.randrange(1, value_range)) for k in keys]


def join_key_streams(left: int, right: int, overlap: float = 0.5,
                     key_space: int = 1 << 20,
                     seed: int = 0) -> Tuple[List[int], List[int]]:
    """Two key streams whose distinct-key sets overlap by ``overlap``."""
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be in [0, 1], got {overlap}")
    rng = random.Random(seed)
    left_keys = [
        rng.randrange(key_space) if rng.random() < overlap
        else key_space + rng.randrange(key_space)
        for _ in range(left)
    ]
    right_keys = [
        rng.randrange(key_space) if rng.random() < overlap
        else 2 * key_space + rng.randrange(key_space)
        for _ in range(right)
    ]
    return left_keys, right_keys
