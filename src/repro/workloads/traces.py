"""Trace-replay workloads: recorded query arrival traces for the scheduler.

Synthetic back-to-back load (``repro serve``/``repro bench concurrency``)
measures makespan and aggregate throughput, but it cannot expose *tail*
behavior: p99 latency and slot-occupancy spikes only appear under
realistic arrival processes.  This module defines the versioned
JSON-lines trace format that ``repro replay`` feeds through the
multi-tenant :class:`~repro.cluster.scheduler.QueryScheduler`, plus
deterministic generators for three arrival processes (Poisson, bursty,
diurnal).  The format is specified normatively in ``docs/TRACES.md``.

Format summary (one JSON object per line):

* line 1 — the **header**: ``{"kind": "cheetah-trace", "version": 1,
  ...}`` with optional trace-wide ``loss_rate`` and ``shards``
  overrides (applied to the replaying scheduler's config) plus
  provenance fields ``process`` and ``seed`` (which knobs generated
  the trace — informational, not applied at replay);
* every following line — one **query record**: ``scenario`` (a name
  from the end-to-end suite), ``arrival_tick`` (non-decreasing),
  optional ``tenant`` name, ``rows`` (table scale), and ``seed``.
  **Version 2** additionally allows per-query QoS hints: ``priority``
  (a class name of the replaying scheduler's
  :class:`~repro.cluster.qos.QosPolicy`) and ``slots`` (serving-slot
  ask, >= 1).  Version-1 traces parse unchanged, and a v1 trace using
  a v2 field fails with a version-gating diagnostic; the writer emits
  the lowest version that can represent the trace.

:func:`parse_trace` validates everything and raises :class:`ValueError`
naming the offending ``source:line``; :func:`load_trace` reads a file.
Generation is pure: the same process, knobs, and seed always produce a
byte-identical trace.  :func:`trace_from_specs` records a live serve
session's tenants as a replayable trace (``repro serve
--record-trace``).

>>> trace = generate_trace("poisson", queries=3, rows=40, seed=7)
>>> [q.arrival_tick for q in trace.queries] == \\
...     [q.arrival_tick for q in generate_trace("poisson", queries=3,
...                                             rows=40, seed=7).queries]
True
>>> parse_trace(trace.to_jsonl()) == trace
True
>>> trace.header()["version"]        # no QoS hints -> version 1
1
>>> generate_trace("pareto", queries=2, rows=40, seed=7,
...                priorities=("interactive", "batch")).header()["version"]
2
>>> parse_trace('{"kind": "cheetah-trace", "version": 99}')
Traceback (most recent call last):
    ...
ValueError: <trace>:1: unsupported trace version 99 (this parser reads versions 1-2)
"""

from __future__ import annotations

import dataclasses
import json
import math
import random
from typing import Dict, List, Optional, Sequence

#: Newest format version this module writes and reads.  The writer
#: emits version 1 whenever a trace uses no v2 feature, so pre-QoS
#: consumers keep reading recorded traces that don't need the hints.
TRACE_VERSION = 2

#: Versions :func:`parse_trace` accepts.
SUPPORTED_VERSIONS = (1, 2)

#: The header's ``kind`` discriminator.
TRACE_KIND = "cheetah-trace"

#: Arrival processes :func:`generate_trace` knows how to synthesize.
ARRIVAL_PROCESSES = ("poisson", "burst", "diurnal", "pareto")

#: Scenario mix generated traces cycle through (all from the e2e suite).
DEFAULT_REPLAY_MIX = (
    "distinct", "filter", "topn", "groupby_max",
    "having_sum", "groupby_sum", "skyline", "join",
)

#: Header keys the parser accepts (anything else is a format error).
_HEADER_KEYS = frozenset(
    {"kind", "version", "process", "seed", "loss_rate", "shards"}
)

#: Query-record keys the parser accepts in a version-1 trace.
_QUERY_KEYS = frozenset(
    {"tenant", "scenario", "rows", "seed", "arrival_tick"}
)

#: Additional query-record keys a version-2 trace may carry.
_QUERY_KEYS_V2 = frozenset({"priority", "slots"})


@dataclasses.dataclass(frozen=True)
class TraceQuery:
    """One recorded query arrival: what runs, how big, and when.

    ``priority`` and ``slots`` are the version-2 QoS hints: the name of
    a priority class of the replaying scheduler's policy, and the
    serving-slot ask.  Their defaults (``None`` / ``1``) mean the query
    needs only version 1 on the wire.
    """

    tenant: str
    scenario: str
    rows: int = 240
    seed: int = 0
    arrival_tick: int = 0
    priority: Optional[str] = None
    slots: int = 1

    @property
    def needs_v2(self) -> bool:
        """Does serializing this query require format version 2?"""
        return self.priority is not None or self.slots != 1

    def to_record(self) -> Dict:
        """The query as its JSON-lines record (plain dict).  The v2
        hints are only emitted when set, so hint-free traces remain
        byte-identical to their version-1 serialization."""
        record = {
            "tenant": self.tenant,
            "scenario": self.scenario,
            "rows": self.rows,
            "seed": self.seed,
            "arrival_tick": self.arrival_tick,
        }
        if self.priority is not None:
            record["priority"] = self.priority
        if self.slots != 1:
            record["slots"] = self.slots
        return record


@dataclasses.dataclass(frozen=True)
class Trace:
    """A parsed (or generated) arrival trace.

    ``loss_rate``/``shards`` are trace-wide scheduler overrides from the
    header; ``None`` means the replaying config's value applies.
    """

    queries: tuple
    process: str = "custom"
    seed: int = 0
    loss_rate: Optional[float] = None
    shards: Optional[int] = None

    @property
    def duration_ticks(self) -> int:
        """Arrival tick of the last query (0 for an empty trace)."""
        if not self.queries:
            return 0
        return self.queries[-1].arrival_tick

    @property
    def version(self) -> int:
        """Lowest format version that can represent this trace."""
        return 2 if any(q.needs_v2 for q in self.queries) else 1

    def header(self) -> Dict:
        """The trace's header record (plain dict)."""
        record = {
            "kind": TRACE_KIND,
            "version": self.version,
            "process": self.process,
            "seed": self.seed,
        }
        if self.loss_rate is not None:
            record["loss_rate"] = self.loss_rate
        if self.shards is not None:
            record["shards"] = self.shards
        return record

    def to_jsonl(self) -> str:
        """The trace serialized as JSON lines (header first)."""
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines += [json.dumps(q.to_record(), sort_keys=True)
                  for q in self.queries]
        return "\n".join(lines) + "\n"

    def save(self, path: str) -> str:
        """Write the trace to ``path`` and return it."""
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_jsonl())
        return path

    def tenant_specs(self) -> List:
        """The trace's queries as scheduler :class:`TenantSpec`s."""
        from repro.cluster.scheduler import TenantSpec

        return [
            TenantSpec(tenant=q.tenant, scenario=q.scenario, rows=q.rows,
                       seed=q.seed, arrival_tick=q.arrival_tick,
                       priority=q.priority, slots=q.slots)
            for q in self.queries
        ]


def _fail(source: str, line_no: int, message: str) -> None:
    raise ValueError(f"{source}:{line_no}: {message}")


def _require_int(record: Dict, key: str, source: str, line_no: int,
                 minimum: int, default: Optional[int] = None) -> int:
    value = record.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        _fail(source, line_no, f"{key!r} must be an integer, "
                               f"got {value!r}")
    if value < minimum:
        _fail(source, line_no, f"{key!r} must be >= {minimum}, "
                               f"got {value}")
    return value


def _parse_header(record: Dict, source: str, line_no: int):
    if record.get("kind") != TRACE_KIND:
        _fail(source, line_no,
              f"first line must be the trace header with "
              f"\"kind\": \"{TRACE_KIND}\", got kind={record.get('kind')!r}")
    version = record.get("version")
    if not isinstance(version, int) or isinstance(version, bool):
        _fail(source, line_no, f"\"version\" must be an integer, "
                               f"got {version!r}")
    if version not in SUPPORTED_VERSIONS:
        _fail(source, line_no,
              f"unsupported trace version {version} (this parser reads "
              f"versions {SUPPORTED_VERSIONS[0]}-{SUPPORTED_VERSIONS[-1]})")
    unknown = sorted(set(record) - _HEADER_KEYS)
    if unknown:
        _fail(source, line_no,
              f"unknown header field(s): {', '.join(unknown)}")
    process = record.get("process", "custom")
    if process != "custom" and process not in ARRIVAL_PROCESSES:
        _fail(source, line_no,
              f"unknown arrival process {process!r} (expected one of: "
              f"{', '.join(ARRIVAL_PROCESSES)}, or custom)")
    seed = _require_int(record, "seed", source, line_no, minimum=0,
                        default=0)
    loss_rate = record.get("loss_rate")
    if loss_rate is not None:
        if not isinstance(loss_rate, (int, float)) \
                or isinstance(loss_rate, bool) \
                or not 0.0 <= loss_rate < 1.0:
            _fail(source, line_no, f"\"loss_rate\" must be a number in "
                                   f"[0, 1), got {loss_rate!r}")
        loss_rate = float(loss_rate)
    shards = record.get("shards")
    if shards is not None:
        shards = _require_int(record, "shards", source, line_no,
                              minimum=1)
    return version, process, seed, loss_rate, shards


def _parse_query(record: Dict, source: str, line_no: int,
                 index: int, scenarios, last_arrival: int,
                 seen_tenants: set, version: int) -> TraceQuery:
    allowed = _QUERY_KEYS if version < 2 else _QUERY_KEYS | _QUERY_KEYS_V2
    unknown = sorted(set(record) - allowed)
    if unknown:
        gated = sorted(set(unknown) & _QUERY_KEYS_V2)
        if gated:
            _fail(source, line_no,
                  f"{', '.join(repr(g) for g in gated)} "
                  f"{'is a' if len(gated) == 1 else 'are'} version-2 "
                  f"field{'s' if len(gated) > 1 else ''} but the header "
                  f"declares version {version}")
        _fail(source, line_no,
              f"unknown query field(s): {', '.join(unknown)}")
    scenario = record.get("scenario")
    if not isinstance(scenario, str):
        _fail(source, line_no, "query record needs a \"scenario\" name, "
                               f"got {scenario!r}")
    if scenario not in scenarios:
        _fail(source, line_no,
              f"unknown scenario {scenario!r} (available: "
              f"{', '.join(sorted(scenarios))})")
    arrival = _require_int(record, "arrival_tick", source, line_no,
                           minimum=0, default=0)
    if arrival < last_arrival:
        _fail(source, line_no,
              f"arrival ticks must be non-decreasing: {arrival} after "
              f"{last_arrival} (sort the trace by arrival_tick)")
    rows = _require_int(record, "rows", source, line_no, minimum=20,
                        default=240)
    seed = _require_int(record, "seed", source, line_no, minimum=0,
                        default=0)
    tenant = record.get("tenant", f"q{index}")
    if not isinstance(tenant, str) or not tenant:
        _fail(source, line_no, f"\"tenant\" must be a non-empty string, "
                               f"got {tenant!r}")
    if tenant in seen_tenants:
        _fail(source, line_no, f"duplicate tenant name {tenant!r}")
    seen_tenants.add(tenant)
    priority = record.get("priority")
    if priority is not None and (not isinstance(priority, str)
                                 or not priority):
        _fail(source, line_no, f"\"priority\" must be a non-empty QoS "
                               f"class name, got {priority!r}")
    slots = _require_int(record, "slots", source, line_no, minimum=1,
                         default=1)
    return TraceQuery(tenant=tenant, scenario=scenario, rows=rows,
                      seed=seed, arrival_tick=arrival,
                      priority=priority, slots=slots)


def parse_trace(text: str, source: str = "<trace>") -> Trace:
    """Parse and validate JSON-lines trace ``text``.

    Every diagnostic is a :class:`ValueError` whose message starts with
    ``source:line`` so a bad line in a recorded trace is directly
    addressable.  Blank lines are permitted (and keep their line
    numbers); the header must be the first non-blank line.
    """
    from repro.cluster.simulation import SCENARIOS

    header = None
    queries: List[TraceQuery] = []
    last_arrival = 0
    seen_tenants: set = set()
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            _fail(source, line_no, f"malformed JSON ({error.msg} at "
                                   f"column {error.colno})")
        if not isinstance(record, dict):
            _fail(source, line_no, "every trace line must be a JSON "
                                   f"object, got {type(record).__name__}")
        if header is None:
            header = _parse_header(record, source, line_no)
            continue
        query = _parse_query(record, source, line_no, index=len(queries),
                             scenarios=SCENARIOS,
                             last_arrival=last_arrival,
                             seen_tenants=seen_tenants,
                             version=header[0])
        last_arrival = query.arrival_tick
        queries.append(query)
    if header is None:
        _fail(source, 1, "empty trace: expected a header line "
                         f"({{\"kind\": \"{TRACE_KIND}\", \"version\": "
                         f"{TRACE_VERSION}}})")
    _version, process, seed, loss_rate, shards = header
    return Trace(queries=tuple(queries), process=process, seed=seed,
                 loss_rate=loss_rate, shards=shards)


def load_trace(path: str) -> Trace:
    """Read and validate the JSON-lines trace at ``path``."""
    with open(path, encoding="utf-8") as f:
        return parse_trace(f.read(), source=path)


# ---------------------------------------------------------------------------
# Deterministic arrival-process generators
# ---------------------------------------------------------------------------

def _poisson_draw(rng: random.Random, lam: float) -> int:
    """One Poisson(lam) variate (Knuth's product method; lam is small)."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def _poisson_arrivals(rng: random.Random, queries: int,
                      interarrival: float) -> List[int]:
    """Poisson process: exponential gaps with mean ``interarrival``."""
    arrivals = []
    clock = 0.0
    for _ in range(queries):
        clock += rng.expovariate(1.0 / interarrival)
        arrivals.append(int(clock))
    return arrivals


def _burst_arrivals(rng: random.Random, queries: int, burst_size: int,
                    burst_gap: int) -> List[int]:
    """Bursty process: ``burst_size`` simultaneous arrivals every
    ``burst_gap`` ticks (the open/closed-loop pattern that overflows a
    slot budget in a single tick)."""
    return [(i // burst_size) * burst_gap for i in range(queries)]


def _pareto_arrivals(rng: random.Random, queries: int,
                     interarrival: float, alpha: float) -> List[int]:
    """Heavy-tailed process: Pareto(alpha) inter-arrival gaps scaled so
    the mean gap is ``interarrival`` ticks (finite only for
    ``alpha > 1``).  Small ``alpha`` means occasional huge gaps between
    dense clumps — the flash-crowd pattern Poisson cannot produce."""
    scale = interarrival * (alpha - 1.0) / alpha
    arrivals = []
    clock = 0.0
    for _ in range(queries):
        # random.paretovariate(alpha) = U^(-1/alpha), mean a/(a-1).
        clock += scale * rng.paretovariate(alpha)
        arrivals.append(int(clock))
    return arrivals


def _diurnal_arrivals(rng: random.Random, queries: int,
                      interarrival: float, period: int,
                      amplitude: float) -> List[int]:
    """Diurnal process: per-tick Poisson thinning with a sinusoidal
    rate, peaking once per ``period`` ticks."""
    arrivals: List[int] = []
    tick = 0
    base_rate = 1.0 / interarrival
    while len(arrivals) < queries:
        rate = base_rate * (1.0 + amplitude
                            * math.sin(2.0 * math.pi * tick / period))
        count = _poisson_draw(rng, max(rate, 0.0))
        arrivals.extend([tick] * min(count, queries - len(arrivals)))
        tick += 1
    return arrivals


def generate_trace(process: str, queries: int, *, rows: int = 240,
                   seed: int = 0,
                   mix: Sequence[str] = DEFAULT_REPLAY_MIX,
                   interarrival: float = 30.0, burst_size: int = 4,
                   burst_gap: int = 120, period: int = 240,
                   amplitude: float = 0.9, alpha: float = 1.5,
                   priorities: Optional[Sequence[str]] = None,
                   loss_rate: Optional[float] = None,
                   shards: Optional[int] = None) -> Trace:
    """Synthesize a ``queries``-query trace under an arrival process.

    ``process`` is one of :data:`ARRIVAL_PROCESSES`: ``poisson``
    (exponential inter-arrival gaps with mean ``interarrival`` ticks),
    ``burst`` (``burst_size`` simultaneous arrivals every ``burst_gap``
    ticks), ``diurnal`` (a sinusoidally modulated Poisson rate with
    one peak per ``period`` ticks, swing set by ``amplitude``), or
    ``pareto`` (heavy-tailed Pareto(``alpha``) inter-arrival gaps with
    mean ``interarrival`` — flash crowds separated by long lulls;
    requires ``alpha > 1`` for the mean to exist).  Scenarios cycle
    through ``mix``; query ``i`` uses dataset seed ``seed + i`` and —
    when ``priorities`` is given — carries the ``i``-th (cycled) QoS
    class hint, making the trace format version 2.  Generation is
    deterministic: same arguments, same trace, byte for byte.
    """
    if process not in ARRIVAL_PROCESSES:
        raise ValueError(
            f"unknown arrival process {process!r} (expected one of: "
            f"{', '.join(ARRIVAL_PROCESSES)})"
        )
    if queries < 0:
        raise ValueError(f"queries must be >= 0, got {queries}")
    if seed < 0:
        # The format forbids negative seeds, so a negative seed here
        # would generate a trace our own parser rejects (breaking the
        # to_jsonl/parse_trace round-trip contract).
        raise ValueError(f"seed must be >= 0, got {seed}")
    if rows < 20:
        raise ValueError(f"rows must be >= 20, got {rows}")
    if not mix:
        raise ValueError("scenario mix must not be empty")
    if interarrival <= 0:
        raise ValueError(f"interarrival must be > 0, got {interarrival}")
    if burst_size < 1:
        raise ValueError(f"burst_size must be >= 1, got {burst_size}")
    if burst_gap < 1:
        raise ValueError(f"burst_gap must be >= 1, got {burst_gap}")
    if period < 2:
        raise ValueError(f"period must be >= 2, got {period}")
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError(f"amplitude must be in [0, 1], got {amplitude}")
    if alpha <= 1.0:
        raise ValueError(
            f"alpha must be > 1 (a Pareto tail index <= 1 has no finite "
            f"mean inter-arrival), got {alpha}"
        )
    if priorities is not None and not priorities:
        raise ValueError("priorities must not be empty when given")
    # Decorrelate the processes' draws with a *stable* per-process salt
    # (never hash(): string hashing is randomized per interpreter run).
    salt = sum(ord(ch) * 131 ** i for i, ch in enumerate(process))
    rng = random.Random((seed * 2654435761 + salt) % (1 << 62))
    if process == "poisson":
        arrivals = _poisson_arrivals(rng, queries, interarrival)
    elif process == "burst":
        arrivals = _burst_arrivals(rng, queries, burst_size, burst_gap)
    elif process == "pareto":
        arrivals = _pareto_arrivals(rng, queries, interarrival, alpha)
    else:
        arrivals = _diurnal_arrivals(rng, queries, interarrival, period,
                                     amplitude)
    trace_queries = tuple(
        TraceQuery(tenant=f"q{i}", scenario=mix[i % len(mix)], rows=rows,
                   seed=seed + i, arrival_tick=arrival,
                   priority=(None if priorities is None
                             else priorities[i % len(priorities)]))
        for i, arrival in enumerate(arrivals)
    )
    return Trace(queries=trace_queries, process=process, seed=seed,
                 loss_rate=loss_rate, shards=shards)


def trace_from_specs(specs: Sequence, seed: int = 0,
                     loss_rate: Optional[float] = None,
                     shards: Optional[int] = None) -> Trace:
    """Record scheduler ``TenantSpec``\\ s as a replayable trace.

    This is the ``repro serve --record-trace`` surface: the serve
    session's admissions (tenant, scenario, rows, seed, arrival tick,
    and the v2 QoS hints) become a trace whose replay under the same
    :class:`~repro.cluster.scheduler.SchedulerConfig` reproduces the
    serve run byte-identically (``ScheduleReport.to_payload``).  The
    header pins the session's network conditions via
    ``loss_rate``/``shards`` and records the scheduler seed as
    provenance; queries are sorted by arrival tick (stable), satisfying
    the format's non-decreasing-arrival rule.
    """
    ordered = sorted(specs, key=lambda s: s.arrival_tick)
    return Trace(
        queries=tuple(
            TraceQuery(tenant=spec.tenant, scenario=spec.scenario,
                       rows=spec.rows, seed=spec.seed,
                       arrival_tick=spec.arrival_tick,
                       priority=spec.priority, slots=spec.slots)
            for spec in ordered
        ),
        process="custom", seed=seed, loss_rate=loss_rate, shards=shards,
    )
