"""Synthetic Big Data benchmark (Appendix B schemas + queries 1-7).

The AMPLab benchmark's two tables, faithfully shaped but generated:

* ``Rankings`` — 90M rows at full scale; columns pageURL (unique),
  pageRank, avgDuration; *roughly sorted on pageRank* (which is why the
  paper permutes it for queries 1 and 3).
* ``UserVisits`` — 775M rows at full scale; nine columns including
  destURL (referencing pageURLs), adRevenue, languageCode (~100 codes,
  Zipf), userAgent (~10k agents, Zipf).

``scale`` sets the row counts as a fraction of full scale so the same
queries run at laptop size; distinct-count ratios and skew are
preserved, which is what the pruning rates depend on.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.core.expr import Col
from repro.db.queries import (
    CompoundQuery,
    DistinctQuery,
    FilterQuery,
    GroupByQuery,
    HavingQuery,
    JoinQuery,
    Query,
    SkylineQuery,
    TopNQuery,
)
from repro.db.table import Table

#: Full-scale row counts (§8.2: the testbed sample uses 31.7M visits /
#: 18M rankings out of 775M / 90M).
FULL_RANKINGS_ROWS = 90_000_000
FULL_USERVISITS_ROWS = 775_000_000
#: The paper's testbed sample sizes.
SAMPLE_RANKINGS_ROWS = 18_000_000
SAMPLE_USERVISITS_ROWS = 31_700_000

LANGUAGE_CODES = 100
USER_AGENTS = 10_000
#: destURL referential hit rate: "the data have 100% match between the
#: keys" (Appendix B note 10) — the paper then samples 10% per side.
JOIN_MATCH_RATE = 1.0


class BigDataGenerator:
    """Seeded generator for scaled Rankings / UserVisits tables."""

    def __init__(self, scale: float = 1e-5, seed: int = 0):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.seed = seed
        self.rankings_rows = max(10, round(SAMPLE_RANKINGS_ROWS * scale))
        self.uservisits_rows = max(10, round(SAMPLE_USERVISITS_ROWS * scale))

    def rankings(self, permuted: bool = False) -> Table:
        """The Rankings table; ``permuted`` applies the random permutation
        the paper uses for the filter and skyline queries (the raw table
        is nearly sorted on pageRank, which is adversarial for pruning)."""
        rng = random.Random(self.seed)
        n = self.rankings_rows
        rows: List[Dict] = []
        for i in range(n):
            # Nearly sorted: rank grows with position plus small noise.
            page_rank = max(1, round(i * 1000 / n) + rng.randint(-3, 3))
            rows.append({
                "pageURL": f"url-{i}.example.com",
                "pageRank": page_rank,
                "avgDuration": rng.randint(1, 200),
            })
        if permuted:
            rng.shuffle(rows)
        return Table.from_rows("Rankings", rows)

    def uservisits(self) -> Table:
        """The UserVisits table (the nine-column schema, Zipf skew on
        userAgent and languageCode, uniform destURL references)."""
        from repro.workloads.streams import zipf_keys

        rng = random.Random(self.seed ^ 0xB16DA7A)
        n = self.uservisits_rows
        # The real table has ~10k agents over 775M rows; keep the pool
        # small relative to the sample so steady-state new-key arrivals
        # (what the tail-rate extrapolation measures) stay realistic.
        agents = zipf_keys(n, min(USER_AGENTS, max(2, n // 40)),
                           skew=1.2, seed=self.seed ^ 1)
        langs = zipf_keys(n, LANGUAGE_CODES, skew=1.05, seed=self.seed ^ 2)
        # Visits come from a bounded, skewed pool of client IPs (query B
        # groups on an IP prefix; repeats are what make it prunable).
        ip_pool = min(65_536, max(2, n // 30))
        ips = zipf_keys(n, ip_pool, skew=1.1, seed=self.seed ^ 3)
        rows: List[Dict] = []
        for i in range(n):
            dest = rng.randrange(self.rankings_rows)
            ip = ips[i]
            rows.append({
                "sourceIP": f"10.{(ip >> 16) & 255}.{(ip >> 8) & 255}."
                            f"{ip & 255}",
                "destURL": f"url-{dest}.example.com",
                "visitDate": 20190000 + rng.randrange(365),
                "adRevenue": round(rng.expovariate(1.0), 4),
                "userAgent": f"agent-{agents[i]}",
                "countryCode": f"C{langs[i] % 60:02d}",
                "languageCode": f"L{langs[i]:03d}",
                "searchWord": f"word-{rng.randrange(1000)}",
                "duration": rng.randint(1, 10_000),
            })
        return Table.from_rows("UserVisits", rows)

    def tables(self) -> Dict[str, Table]:
        """Both tables, with Rankings permuted as the paper's queries use."""
        return {
            "Rankings": self.rankings(permuted=True),
            "UserVisits": self.uservisits(),
        }


def benchmark_query(number: int, scale: float = 1e-5) -> Query:
    """Appendix B queries 1-7, with thresholds rescaled where they refer
    to absolute aggregate mass (the HAVING revenue cutoff)."""
    if number == 1:
        return FilterQuery(predicate=Col("avgDuration") < 10,
                           count_only=True, table="Rankings")
    if number == 2:
        return DistinctQuery(key_columns=("userAgent",),
                             table="UserVisits")
    if number == 3:
        return SkylineQuery(dimensions=("pageRank", "avgDuration"),
                            table="Rankings")
    if number == 4:
        return TopNQuery(n=250, order_column="adRevenue",
                         table="UserVisits")
    if number == 5:
        return GroupByQuery(key_column="userAgent",
                            value_column="adRevenue", aggregate="max",
                            table="UserVisits")
    if number == 6:
        return JoinQuery(left_table="UserVisits", right_table="Rankings",
                         left_key="destURL", right_key="pageURL")
    if number == 7:
        # $1M over 775M rows of ~unit revenue ~= 0.13% of total mass per
        # output key; scale the cutoff with the generated mass.
        rows = max(10, round(SAMPLE_USERVISITS_ROWS * scale))
        return HavingQuery(key_column="languageCode",
                           value_column="adRevenue",
                           threshold=max(2.0, 0.0013 * rows),
                           aggregate="sum", table="UserVisits")
    raise ValueError(f"benchmark queries are numbered 1-7, got {number}")


def q6_sampled_tables(tables: Dict[str, Table], rate: float = 0.1,
                      seed: int = 0) -> Dict[str, Table]:
    """The paper's query-6 preparation: the raw data has a 100% key match
    (nothing is prunable), so a random ``rate`` subset of each table is
    joined instead (Appendix B, note 10)."""
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    rng = random.Random(seed)
    sampled = {}
    for name, table in tables.items():
        keep = [i for i in range(len(table)) if rng.random() < rate]
        if not keep:
            keep = [0]
        sampled[name] = table.take(keep)
    return sampled


#: Query A (filtering) and B (sum group-by) of the Big Data benchmark
#: runs in Figure 5, plus the A+B compound.
def query_a() -> Query:
    """BigData A: a filtering query on the (permuted) Rankings table."""
    return FilterQuery(predicate=Col("pageRank") > 700, table="Rankings")


def query_b() -> Query:
    """BigData B: SUM + GROUP BY on UserVisits (offloaded via in-switch
    partial aggregation, §6)."""
    return GroupByQuery(key_column="sourceIP", value_column="adRevenue",
                        aggregate="sum", table="UserVisits")


def query_a_plus_b() -> Query:
    """The combined A + B workload (packed concurrently, §6)."""
    return CompoundQuery(parts=(query_a(), query_b()))


BENCHMARK_QUERIES = {
    "bigdata_a": query_a,
    "bigdata_b": query_b,
    "bigdata_a_plus_b": query_a_plus_b,
    **{f"q{i}": (lambda i=i: benchmark_query(i)) for i in range(1, 8)},
}
