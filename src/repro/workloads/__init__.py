"""Workload generators: synthetic Big Data benchmark and TPC-H subset.

The paper's datasets (AMPLab Big Data benchmark at 90M/775M rows, TPC-H
at default scale) are replaced by schema- and distribution-faithful
generators at configurable scale; pruning rates depend on distinct
counts, skew, and ordering, which the generators preserve.
"""

from repro.workloads.streams import (
    random_order_stream,
    zipf_keys,
    distinct_stream,
    random_points,
)
from repro.workloads.bigdata import (
    BigDataGenerator,
    BENCHMARK_QUERIES,
    benchmark_query,
)
from repro.workloads.tpch import TPCHGenerator, tpch_q3_queries
from repro.workloads.traces import (
    ARRIVAL_PROCESSES,
    TRACE_VERSION,
    Trace,
    TraceQuery,
    generate_trace,
    load_trace,
    parse_trace,
)

__all__ = [
    "random_order_stream",
    "zipf_keys",
    "distinct_stream",
    "random_points",
    "BigDataGenerator",
    "BENCHMARK_QUERIES",
    "benchmark_query",
    "TPCHGenerator",
    "tpch_q3_queries",
    "ARRIVAL_PROCESSES",
    "TRACE_VERSION",
    "Trace",
    "TraceQuery",
    "generate_trace",
    "load_trace",
    "parse_trace",
]
