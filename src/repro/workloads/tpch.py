"""TPC-H subset generator and Query 3 (§8.2: Cheetah offloads Q3's join).

TPC-H Q3 (shipping priority)::

    SELECT l_orderkey, sum(l_extendedprice*(1-l_discount)) as revenue,
           o_orderdate, o_shippriority
    FROM customer, orders, lineitem
    WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
      AND l_orderkey = o_orderkey AND o_orderdate < date '1995-03-15'
      AND l_shipdate > date '1995-03-15'
    GROUP BY l_orderkey, o_orderdate, o_shippriority
    ORDER BY revenue desc LIMIT 10

The query mixes two joins, three filters, a group-by, and a top-N.  The
paper offloads the join part (it takes 67% of the query time).  The
generator produces the three tables with TPC-H's cardinality ratios
(orders = 1.5x customers x 10, lineitems ~ 4x orders) and value
distributions that preserve the Q3 selectivities (~1/5 market segment,
~48% of order dates before the cutoff, ~54% of ship dates after).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core.expr import Col
from repro.db.queries import FilterQuery, JoinQuery, Query, TopNQuery
from repro.db.table import Table

#: TPC-H scale factor 1 cardinalities (we scale them down).
SF1_CUSTOMERS = 150_000
SF1_ORDERS = 1_500_000
SF1_LINEITEMS = 6_000_000

MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                   "MACHINERY"]
#: Dates as integers (days since epoch-ish); the Q3 cutoff.
Q3_CUTOFF_DATE = 9205  # 1995-03-15 in days since 1970-01-01
DATE_LO, DATE_HI = 8035, 10591  # 1992-01-01 .. 1998-12-31


class TPCHGenerator:
    """Seeded generator for the customer/orders/lineitem subset."""

    def __init__(self, scale: float = 1e-3, seed: int = 0):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.seed = seed
        self.customers_n = max(5, round(SF1_CUSTOMERS * scale))
        self.orders_n = max(10, round(SF1_ORDERS * scale))
        self.lineitems_n = max(20, round(SF1_LINEITEMS * scale))

    def customer(self) -> Table:
        """CUSTOMER subset: custkey, mktsegment."""
        rng = random.Random(self.seed)
        rows = [
            {
                "c_custkey": i,
                "c_mktsegment": rng.choice(MARKET_SEGMENTS),
            }
            for i in range(self.customers_n)
        ]
        return Table.from_rows("customer", rows)

    def orders(self) -> Table:
        """ORDERS subset: orderkey, custkey, orderdate, shippriority."""
        rng = random.Random(self.seed ^ 0xD0)
        rows = [
            {
                "o_orderkey": i,
                "o_custkey": rng.randrange(self.customers_n),
                "o_orderdate": rng.randint(DATE_LO, DATE_HI),
                "o_shippriority": 0,
            }
            for i in range(self.orders_n)
        ]
        return Table.from_rows("orders", rows)

    def lineitem(self) -> Table:
        """LINEITEM subset: orderkey, extendedprice, discount, shipdate."""
        rng = random.Random(self.seed ^ 0x11)
        rows = [
            {
                "l_orderkey": rng.randrange(self.orders_n),
                "l_extendedprice": round(rng.uniform(900.0, 105_000.0), 2),
                "l_discount": round(rng.uniform(0.0, 0.10), 2),
                "l_shipdate": rng.randint(DATE_LO, DATE_HI),
            }
            for i in range(self.lineitems_n)
        ]
        return Table.from_rows("lineitem", rows)

    def tables(self) -> Dict[str, Table]:
        """All three tables."""
        return {
            "customer": self.customer(),
            "orders": self.orders(),
            "lineitem": self.lineitem(),
        }


def q3_filtered_inputs(tables: Dict[str, Table]) -> Dict[str, Table]:
    """Apply Q3's three filter predicates (these run at the workers; the
    switch offload targets the joins)."""
    customer = tables["customer"]
    orders = tables["orders"]
    lineitem = tables["lineitem"]
    cust_keep = [i for i, row in enumerate(customer.rows())
                 if row["c_mktsegment"] == "BUILDING"]
    orders_keep = [i for i, row in enumerate(orders.rows())
                   if row["o_orderdate"] < Q3_CUTOFF_DATE]
    line_keep = [i for i, row in enumerate(lineitem.rows())
                 if row["l_shipdate"] > Q3_CUTOFF_DATE]
    return {
        "customer": customer.take(cust_keep),
        "orders": orders.take(orders_keep),
        "lineitem": lineitem.take(line_keep),
    }


def tpch_q3_queries() -> Tuple[Query, Query, Query]:
    """Q3 decomposed into the pieces Cheetah sees.

    Returns (customer-orders join, orders-lineitem join, final top-N).
    The joins are what the paper offloads ("the join part ... takes 67%
    of the query time"); the final revenue group-by/top-10 runs at the
    master.
    """
    join_co = JoinQuery(left_table="orders", right_table="customer",
                        left_key="o_custkey", right_key="c_custkey")
    join_ol = JoinQuery(left_table="lineitem", right_table="orders",
                        left_key="l_orderkey", right_key="o_orderkey")
    topn = TopNQuery(n=10, order_column="l_extendedprice",
                     table="lineitem")
    return join_co, join_ol, topn


def q3_reference_result(tables: Dict[str, Table], limit: int = 10) -> List:
    """Ground-truth Q3: top ``limit`` (orderkey, revenue) rows."""
    filtered = q3_filtered_inputs(tables)
    building = {row["c_custkey"] for row in filtered["customer"].rows()}
    order_ok = {
        row["o_orderkey"]: row
        for row in filtered["orders"].rows()
        if row["o_custkey"] in building
    }
    revenue: Dict[int, float] = {}
    for row in filtered["lineitem"].rows():
        order = order_ok.get(row["l_orderkey"])
        if order is None:
            continue
        revenue[row["l_orderkey"]] = revenue.get(row["l_orderkey"], 0.0) + (
            row["l_extendedprice"] * (1.0 - row["l_discount"])
        )
    ranked = sorted(revenue.items(), key=lambda kv: -kv[1])
    return ranked[:limit]
