"""Compatibility shim for toolchains without PEP 660 support.

All metadata lives in pyproject.toml; ``pip install -e .`` uses it
directly.  This file only enables the legacy editable path
(``pip install -e . --no-use-pep517`` / ``python setup.py develop``) on
environments whose setuptools cannot build editable wheels (e.g. no
``wheel`` package and no network to fetch one).
"""

from setuptools import setup

setup()
